"""The fault controller: executes a compiled plan on the sim kernel.

:class:`FaultController` takes a :class:`~repro.faults.plan.FaultPlan`,
binds its entries to injectors against a built system, and schedules
every compiled :class:`FaultEvent` as a kernel callback (offset from the
simulated time at :meth:`start`).  For each firing it:

* calls the injector's ``inject`` and tallies the outcome in the
  :class:`~repro.faults.report.ResilienceReport`,
* emits a ``fault`` instant (and a ``fault`` span once the window
  closes) plus ``faults.*`` counters on the ambient trace session,
* opens a *fault window* — the interval during which in-flight journeys
  are considered fault-affected.  The controller registers itself as the
  journey tracker's ``fault_probe`` so every journey that overlaps an
  open window is tagged with the fault labels at finish time (nil-checked:
  zero cost when no controller is active).

Windows with ``duration_ps > 0`` schedule the injector's ``recover`` at
window end.  Injectors flagged ``needs_heal`` (channel retraining runs
the simulator itself) defer recovery to :meth:`heal`, which the driving
experiment calls between ``sim.run`` invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim import Rng, Simulator, derive_seed
from ..telemetry import probe
from .injectors import Injector, make_injector
from .plan import FaultEvent, FaultPlan
from .report import ResilienceReport


@dataclass
class FaultWindow:
    """One open (or closed) fault interval, keyed by the spec label."""

    label: str
    index: int
    start_ps: int
    end_ps: Optional[int] = None


class FaultController:
    """Schedules a plan's events and tracks active fault windows."""

    def __init__(self, sim: Simulator, plan: FaultPlan, seed: int = 0):
        self.sim = sim
        self.plan = plan
        self.seed = seed
        self.report = ResilienceReport(plan.name)
        self.windows: List[FaultWindow] = []
        self._injectors: List[Injector] = []
        self._pending_heal: List[Tuple[FaultEvent, FaultWindow, Injector]] = []
        self._started = False
        self._stopped = False
        self._tracker = None

    # -- setup ----------------------------------------------------------

    def install(self, system) -> "FaultController":
        """Build and bind one injector per plan entry."""
        root = Rng(derive_seed(self.seed, f"faults.{self.plan.name}"), "faults")
        self._injectors = []
        for spec in self.plan.specs:
            injector = make_injector(spec, self.sim, root.fork(spec.label))
            injector.bind(system)
            self._injectors.append(injector)
        return self

    def start(self) -> "FaultController":
        """Schedule every compiled event, offset from the current sim time."""
        if self._started:
            return self
        self._started = True
        offset = self.sim.now_ps
        for event in self.plan.compile(self.seed):
            self.sim.call_at(offset + event.at_ps, self._fire, event)
        trace = probe.session
        if trace is not None and trace.journeys is not None:
            self._tracker = trace.journeys
            self._tracker.fault_probe = self.fault_tags
        return self

    # -- event execution -------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        if self._stopped:
            return
        now = self.sim.now_ps
        spec = event.spec
        injector = self._injectors[event.index]
        outcome = injector.inject(now)
        self.report.record_injection(spec, outcome)
        trace = probe.session
        if trace is not None:
            trace.instant("fault", f"inject:{spec.label}", now, args={
                "injector": spec.injector,
                "target": spec.target,
                "outcome": outcome,
            })
            trace.count("faults.injected" if outcome == "injected"
                        else "faults.skipped")
            if outcome == "injected":
                trace.count(f"faults.{spec.injector}")
        if outcome == "skipped":
            return
        window = FaultWindow(spec.label, event.index, now)
        self.windows.append(window)
        if spec.duration_ps > 0:
            self.sim.call_at(now + spec.duration_ps, self._close, event, window)
        elif injector.needs_heal:
            self._pending_heal.append((event, window, injector))
        else:
            window.end_ps = now  # point fault: tags journeys in flight now

    def _close(self, event: FaultEvent, window: FaultWindow) -> None:
        if self._stopped or window.end_ps is not None:
            return
        injector = self._injectors[event.index]
        if injector.needs_heal:
            self._pending_heal.append((event, window, injector))
            return
        now = self.sim.now_ps
        outcome = injector.recover(now)
        window.end_ps = now
        self._record_recovery(event.spec, window, outcome)

    def _record_recovery(self, spec, window: FaultWindow, outcome: str) -> None:
        self.report.record_recovery(spec, outcome)
        trace = probe.session
        if trace is not None:
            end = window.end_ps if window.end_ps is not None else window.start_ps
            trace.complete("fault", spec.label, window.start_ps, end, args={
                "injector": spec.injector,
                "target": spec.target,
                "outcome": outcome,
            })
            if outcome in ("recovered", "failed", "lost"):
                trace.count(f"faults.{outcome}")

    # -- out-of-kernel recovery ------------------------------------------

    def heal(self) -> List[Tuple[str, str]]:
        """Run deferred recoveries that cannot execute inside kernel events
        (channel retraining drives the simulator).  Call between sim runs.
        Returns ``[(label, outcome), ...]``."""
        healed: List[Tuple[str, str]] = []
        pending, self._pending_heal = self._pending_heal, []
        for event, window, injector in pending:
            outcome = injector.heal(self.sim.now_ps)
            window.end_ps = self.sim.now_ps
            self._record_recovery(event.spec, window, outcome)
            healed.append((event.spec.label, outcome))
        return healed

    # -- journey tagging --------------------------------------------------

    def fault_tags(self, start_ps: int, end_ps: int) -> Tuple[str, ...]:
        """Labels of fault windows overlapping [start_ps, end_ps].

        Installed as the journey tracker's ``fault_probe``; an open window
        (``end_ps is None``) overlaps everything after its start.
        """
        hits = {
            w.label
            for w in self.windows
            if w.start_ps <= end_ps and (w.end_ps is None or w.end_ps >= start_ps)
        }
        return tuple(sorted(hits))

    # -- teardown ---------------------------------------------------------

    def stop(self) -> ResilienceReport:
        """Close every open window (recovering where possible) and detach.

        Idempotent.  Scheduled events still in the kernel queue become
        no-ops.  Returns the resilience report.
        """
        if self._stopped:
            return self.report
        self._stopped = True
        now = self.sim.now_ps
        deferred = {id(w) for _, w, _ in self._pending_heal}
        for event, window, injector in self._pending_heal:
            outcome = injector.heal(now)
            window.end_ps = now
            self._record_recovery(event.spec, window, outcome)
        self._pending_heal = []
        for window in self.windows:
            if window.end_ps is None and id(window) not in deferred:
                injector = self._injectors[window.index]
                outcome = injector.recover(now)
                window.end_ps = now
                self._record_recovery(self.plan.specs[window.index], window, outcome)
        # publish the closed windows so the attribution artifact and the
        # time-bucketed resilience view can line injections up with latency
        trace = probe.session
        if trace is not None and hasattr(trace, "fault_windows"):
            for window in self.windows:
                spec = self.plan.specs[window.index]
                trace.fault_windows.append({
                    "label": window.label,
                    "injector": spec.injector,
                    "target": spec.target,
                    "start_ps": window.start_ps,
                    "end_ps": window.end_ps if window.end_ps is not None else now,
                })
        if self._tracker is not None:
            if self._tracker.fault_probe == self.fault_tags:
                self._tracker.fault_probe = None
            self._tracker = None
        return self.report
