"""Fault plans: declarative, seeded, compilable chaos schedules.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming
a registered injector (see :mod:`repro.faults.injectors`), a target, a
schedule, and injector parameters.  Plans load from a plain dict or JSON
(``scripts/run_campaign.py --faults plan.json`` ships the canonical JSON
form across the worker process boundary) and **compile** into a flat,
sorted list of :class:`FaultEvent` fire times.

Three schedule kinds:

``once``
    A single event at ``at_ps``.
``periodic``
    ``count`` events starting at ``start_ps``, every ``period_ps``.
``bernoulli``
    One trial per ``period_ps`` tick from ``start_ps`` to ``until_ps``;
    each fires with probability ``rate``.  The trial stream is seeded via
    :func:`repro.sim.rng.derive_seed` from the plan seed and the entry's
    label, so the same (plan, seed) pair compiles to the same schedule on
    any platform, worker count, or Python build.

All times are **relative to the controller's start**, not absolute sim
time — a plan is reusable across runs whose boot phases take different
amounts of simulated time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.rng import Rng, derive_seed

#: the accepted ``schedule`` values
SCHEDULES = ("once", "periodic", "bernoulli")


@dataclass(frozen=True)
class FaultSpec:
    """One plan entry: what to inject, where, and when."""

    #: registered injector name, e.g. ``"dmi.bit_errors"``
    injector: str
    #: injector-specific target selector (e.g. a channel number); empty
    #: string means "every eligible target"
    target: str = ""
    schedule: str = "once"
    #: ``once``: fire time (relative to controller start)
    at_ps: int = 0
    #: ``periodic``/``bernoulli``: first tick
    start_ps: int = 0
    #: ``periodic``/``bernoulli``: tick spacing
    period_ps: int = 0
    #: ``periodic``: number of ticks
    count: int = 1
    #: ``bernoulli``: per-tick fire probability
    rate: float = 0.0
    #: ``bernoulli``: last tick bound (exclusive)
    until_ps: int = 0
    #: fault window length; the injector's ``recover`` runs at window end
    #: (0 = a point fault with no recovery action)
    duration_ps: int = 0
    #: injector parameters as sorted (key, value) pairs — tuple form keeps
    #: the spec hashable and its canonical JSON stable
    params: Tuple[Tuple[str, object], ...] = ()
    #: unique label; auto-assigned by the plan when empty
    label: str = ""

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            raise ConfigurationError(
                f"fault {self.injector!r}: unknown schedule {self.schedule!r} "
                f"(one of {', '.join(SCHEDULES)})"
            )
        if self.schedule == "periodic" and (self.period_ps <= 0 or self.count <= 0):
            raise ConfigurationError(
                f"fault {self.injector!r}: periodic schedule needs "
                "period_ps > 0 and count > 0"
            )
        if self.schedule == "bernoulli":
            if self.period_ps <= 0 or self.until_ps <= self.start_ps:
                raise ConfigurationError(
                    f"fault {self.injector!r}: bernoulli schedule needs "
                    "period_ps > 0 and until_ps > start_ps"
                )
            if not 0.0 <= self.rate <= 1.0:
                raise ConfigurationError(
                    f"fault {self.injector!r}: rate {self.rate} outside [0, 1]"
                )
        if self.duration_ps < 0:
            raise ConfigurationError(
                f"fault {self.injector!r}: negative duration_ps"
            )

    def param(self, key: str, default: object = None) -> object:
        for k, v in self.params:
            if k == key:
                return v
        return default

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def fire_times(self, seed: int) -> List[int]:
        """The relative fire times this spec's schedule compiles to."""
        if self.schedule == "once":
            return [self.at_ps]
        if self.schedule == "periodic":
            return [self.start_ps + i * self.period_ps for i in range(self.count)]
        rng = Rng(derive_seed(seed, f"fault.{self.label}"), self.label)
        times: List[int] = []
        tick = self.start_ps
        while tick < self.until_ps:
            if rng.chance(self.rate):
                times.append(tick)
            tick += self.period_ps
        return times

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"injector": self.injector}
        if self.target:
            out["target"] = self.target
        out["schedule"] = self.schedule
        if self.schedule == "once":
            out["at_ps"] = self.at_ps
        else:
            out["start_ps"] = self.start_ps
            out["period_ps"] = self.period_ps
            if self.schedule == "periodic":
                out["count"] = self.count
            else:
                out["rate"] = self.rate
                out["until_ps"] = self.until_ps
        if self.duration_ps:
            out["duration_ps"] = self.duration_ps
        if self.params:
            out["params"] = dict(self.params)
        if self.label:
            out["label"] = self.label
        return out

    @staticmethod
    def from_dict(entry: dict) -> "FaultSpec":
        if "injector" not in entry:
            raise ConfigurationError(f"fault entry missing 'injector': {entry}")
        known = {
            "injector", "target", "schedule", "at_ps", "start_ps", "period_ps",
            "count", "rate", "until_ps", "duration_ps", "params", "label",
        }
        unknown = set(entry) - known
        if unknown:
            raise ConfigurationError(
                f"fault {entry['injector']!r}: unknown keys {sorted(unknown)}"
            )
        params = entry.get("params", {})
        if not isinstance(params, dict):
            raise ConfigurationError(
                f"fault {entry['injector']!r}: params must be an object"
            )
        fields = {k: entry[k] for k in known - {"params"} if k in entry}
        fields["params"] = tuple(sorted(params.items()))
        return FaultSpec(**fields)


@dataclass(frozen=True)
class FaultEvent:
    """One compiled firing: when, which spec, and the spec's plan index."""

    at_ps: int
    index: int
    spec: FaultSpec


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, labelled collection of fault specs."""

    name: str = "faults"
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # auto-label so every spec has a stable, unique identity (the
        # Bernoulli seed and the journey fault tags both key off it)
        labelled: List[FaultSpec] = []
        seen: Dict[str, int] = {}
        for i, spec in enumerate(self.specs):
            label = spec.label or (
                f"{spec.injector}[{spec.target}]#{i}" if spec.target
                else f"{spec.injector}#{i}"
            )
            if label in seen:
                raise ConfigurationError(
                    f"plan {self.name!r}: duplicate fault label {label!r}"
                )
            seen[label] = i
            labelled.append(replace(spec, label=label))
        object.__setattr__(self, "specs", tuple(labelled))

    def __len__(self) -> int:
        return len(self.specs)

    # -- compilation --------------------------------------------------------

    def compile(self, seed: int = 0) -> List[FaultEvent]:
        """Flatten every spec's schedule into one sorted event list.

        Ordering is (fire time, plan index): deterministic for a given
        (plan, seed), independent of anything about the run executing it.
        """
        events: List[FaultEvent] = []
        for index, spec in enumerate(self.specs):
            for at_ps in spec.fire_times(seed):
                events.append(FaultEvent(at_ps, index, spec))
        events.sort(key=lambda e: (e.at_ps, e.index))
        return events

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {"name": self.name, "faults": [s.to_dict() for s in self.specs]}

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact separators.  The form that
        rides in campaign job kwargs (hashable, cache-key stable)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(data: dict) -> "FaultPlan":
        if "faults" not in data or not isinstance(data["faults"], list):
            raise ConfigurationError("fault plan needs a 'faults' list")
        return FaultPlan(
            name=data.get("name", "faults"),
            specs=tuple(FaultSpec.from_dict(e) for e in data["faults"]),
        )

    @staticmethod
    def from_json(text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        return FaultPlan.from_dict(data)

    @staticmethod
    def load(source: Optional[object]) -> Optional["FaultPlan"]:
        """Coerce a plan from whatever an experiment kwarg carries.

        Accepts ``None`` (no plan), an existing plan, a dict, or a JSON
        string — the last is how ``--faults`` crosses the campaign's
        process boundary (job kwargs must stay hashable).
        """
        if source is None or isinstance(source, FaultPlan):
            return source
        if isinstance(source, dict):
            return FaultPlan.from_dict(source)
        if isinstance(source, str):
            return FaultPlan.from_json(source)
        raise ConfigurationError(
            f"cannot load a fault plan from {type(source).__name__}"
        )
