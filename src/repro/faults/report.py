"""Resilience reporting: tallies per fault label, rendered as text.

Two entry points produce a report:

* a live :class:`FaultController` tallies outcomes directly into its
  :class:`ResilienceReport` as events fire, and
* :func:`report_from_snapshot` reconstructs totals from a campaign
  metrics snapshot's ``faults.*`` counters — the path
  ``scripts/run_chaos.py`` uses, since controllers live and die inside
  the experiment runners.

``render`` optionally takes a
:class:`~repro.telemetry.attribution.LatencyBreakdown` and appends
clean-vs-fault-affected latency deltas per scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..telemetry.buckets import bucket_of, slice_width, sparkline

#: recovery outcomes a tally tracks (injections and skips are separate)
OUTCOMES = ("recovered", "failed", "lost")


@dataclass
class FaultTally:
    """Outcome counts for one plan entry."""

    label: str
    injector: str
    injected: int = 0
    skipped: int = 0
    recovered: int = 0
    failed: int = 0
    lost: int = 0


@dataclass
class ResilienceReport:
    """Aggregated fault outcomes for one controller run."""

    plan_name: str = "faults"
    tallies: Dict[str, FaultTally] = field(default_factory=dict)

    def _tally(self, spec) -> FaultTally:
        tally = self.tallies.get(spec.label)
        if tally is None:
            tally = FaultTally(spec.label, spec.injector)
            self.tallies[spec.label] = tally
        return tally

    def record_injection(self, spec, outcome: str) -> None:
        tally = self._tally(spec)
        if outcome == "injected":
            tally.injected += 1
        else:
            tally.skipped += 1

    def record_recovery(self, spec, outcome: str) -> None:
        tally = self._tally(spec)
        if outcome in OUTCOMES:
            setattr(tally, outcome, getattr(tally, outcome) + 1)

    # -- aggregate views --------------------------------------------------

    def total(self, field_name: str) -> int:
        return sum(getattr(t, field_name) for t in self.tallies.values())

    def rows(self) -> List[FaultTally]:
        return [self.tallies[label] for label in sorted(self.tallies)]

    def render(self, breakdown=None) -> str:
        """The resilience report as text; latency deltas when a
        breakdown with fault-tagged journeys is supplied."""
        lines = [
            f"Resilience report — plan {self.plan_name!r}",
            f"  faults injected: {self.total('injected')}"
            f"  (skipped: {self.total('skipped')})",
            f"  recoveries: {self.total('recovered')}"
            f"   failures: {self.total('failed')}"
            f"   lost: {self.total('lost')}",
        ]
        if self.tallies:
            lines.append("")
            width = max(len(t.label) for t in self.tallies.values())
            header = (f"  {'fault':<{width}}  {'injected':>8}  {'skipped':>7}"
                      f"  {'recovered':>9}  {'failed':>6}  {'lost':>4}")
            lines += [header, "  " + "-" * (len(header) - 2)]
            for t in self.rows():
                lines.append(
                    f"  {t.label:<{width}}  {t.injected:>8}  {t.skipped:>7}"
                    f"  {t.recovered:>9}  {t.failed:>6}  {t.lost:>4}"
                )
        if breakdown is not None:
            delta_lines = _latency_delta_lines(breakdown)
            if delta_lines:
                lines += ["", "  clean vs fault-affected latency (ns):"] + delta_lines
        return "\n".join(lines)


def _latency_delta_lines(breakdown) -> List[str]:
    ns = 1 / 1_000.0  # summaries are in ps
    lines: List[str] = []
    for scenario in breakdown.scenarios():
        split = breakdown.fault_split(scenario)
        if split is None:
            continue
        clean, fault = split
        delta = (fault["mean"] - clean["mean"]) * ns
        lines.append(
            f"    {scenario}: clean p50={clean['p50'] * ns:.1f}"
            f" p99={clean['p99'] * ns:.1f} ({clean['count']:.0f} journeys)"
            f" | fault p50={fault['p50'] * ns:.1f} p99={fault['p99'] * ns:.1f}"
            f" ({fault['count']:.0f} journeys) | mean delta {delta:+.1f}"
        )
    return lines


def time_buckets(
    windows: List[Mapping], journeys: List[Mapping], buckets: int = 10
) -> List[dict]:
    """Bucket sim time so injections line up against the latency they cause.

    ``windows`` are fault-window dicts (``TraceSession.fault_windows`` or
    the artifact's ``fault_window`` records: label/injector/start_ps/
    end_ps); ``journeys`` are journey records.  Time from the earliest
    journey start (or window open) to the latest end is cut into
    ``buckets`` equal slices; each row reports the windows that *opened*
    in the slice, the windows *overlapping* it, and the journeys that
    finished in it — split clean vs fault-affected, with mean latencies
    in ps.  Returns [] when no journey completed.
    """
    done = [j for j in journeys if j.get("end_ps") is not None]
    if not done or buckets < 1:
        return []
    t0 = min(j["start_ps"] for j in done)
    t1 = max(j["end_ps"] for j in done)
    for w in windows:
        t0 = min(t0, w["start_ps"])
        t1 = max(t1, w.get("end_ps") or w["start_ps"])
    width = slice_width(t0, t1, buckets)
    rows = [
        {
            "bucket": b,
            "start_ps": t0 + b * width,
            "end_ps": t0 + (b + 1) * width,
            "injections": 0,
            "open_windows": 0,
            "journeys": 0,
            "fault_journeys": 0,
            "clean_total_ps": 0,
            "fault_total_ps": 0,
        }
        for b in range(buckets)
    ]
    for w in windows:
        opened = bucket_of(w["start_ps"], t0, width, buckets)
        rows[opened]["injections"] += 1
        end = w.get("end_ps") or w["start_ps"]
        for row in rows:
            if w["start_ps"] < row["end_ps"] and end >= row["start_ps"]:
                row["open_windows"] += 1
    for j in done:
        row = rows[bucket_of(j["end_ps"], t0, width, buckets)]
        row["journeys"] += 1
        latency = j["end_ps"] - j["start_ps"]
        if j.get("faults"):
            row["fault_journeys"] += 1
            row["fault_total_ps"] += latency
        else:
            row["clean_total_ps"] += latency
    for row in rows:
        clean = row["journeys"] - row["fault_journeys"]
        row["clean_mean_ps"] = row["clean_total_ps"] / clean if clean else 0.0
        row["fault_mean_ps"] = (
            row["fault_total_ps"] / row["fault_journeys"]
            if row["fault_journeys"] else 0.0
        )
    return rows


def render_time_buckets(rows: List[Mapping]) -> str:
    """The time-bucketed injections-vs-latency view as fixed-width text."""
    if not rows:
        return ""
    us = 1 / 1e6  # ps -> µs
    lines = [
        "  injections vs latency over sim time:",
        "  {:>18}  {:>3}  {:>4}  {:>14}  {:>10}  {:>10}".format(
            "bucket (us)", "inj", "open", "journeys(c/f)",
            "clean (us)", "fault (us)",
        ),
    ]
    lines.append("  " + "-" * (len(lines[-1]) - 2))
    for row in rows:
        clean = row["journeys"] - row["fault_journeys"]
        lines.append(
            "  {:>18}  {:>3}  {:>4}  {:>14}  {:>10}  {:>10}".format(
                f"{row['start_ps'] * us:.0f}-{row['end_ps'] * us:.0f}",
                row["injections"],
                row["open_windows"],
                f"{clean}/{row['fault_journeys']}",
                f"{row['clean_mean_ps'] * us:.1f}" if clean else "-",
                f"{row['fault_mean_ps'] * us:.1f}"
                if row["fault_journeys"] else "-",
            )
        )
    # trend lines: one glyph per bucket, shared zero baseline so the
    # injection spikes line up visually against the latency they cause
    lines += [
        "",
        "  injections  " + sparkline([r["injections"] for r in rows]),
        "  fault mean  " + sparkline([r["fault_mean_ps"] for r in rows]),
        "  clean mean  " + sparkline([r["clean_mean_ps"] for r in rows]),
    ]
    return "\n".join(lines)


def report_from_snapshot(
    snapshot: Mapping[str, float], plan_name: str = "faults"
) -> Optional[ResilienceReport]:
    """Rebuild aggregate totals from ``faults.*`` metrics counters.

    Per-label tallies are not recoverable from a flat snapshot, so the
    result carries one synthetic tally per injector counter plus the
    aggregate totals.  Returns ``None`` when the snapshot recorded no
    fault activity at all.
    """
    injected = int(snapshot.get("faults.injected", 0))
    skipped = int(snapshot.get("faults.skipped", 0))
    if injected == 0 and skipped == 0:
        return None
    report = ResilienceReport(plan_name)
    for key in sorted(snapshot):
        if not key.startswith("faults."):
            continue
        kind = key[len("faults."):]
        if kind in ("injected", "skipped") or kind in OUTCOMES:
            continue
        tally = FaultTally(label=kind, injector=kind)
        tally.injected = int(snapshot[key])
        report.tallies[kind] = tally
    # aggregate-only totals ride on a synthetic row when per-injector
    # counters are absent, keeping total() views correct either way
    totals = FaultTally(label="(total)", injector="*")
    totals.injected = injected - report.total("injected")
    totals.skipped = skipped
    totals.recovered = int(snapshot.get("faults.recovered", 0))
    totals.failed = int(snapshot.get("faults.failed", 0))
    totals.lost = int(snapshot.get("faults.lost", 0))
    report.tallies["(total)"] = totals
    return report
