"""Deterministic fault injection & resilience reporting.

See :mod:`repro.faults.plan` for the plan schema,
:mod:`repro.faults.injectors` for the registry of fault primitives, and
``docs/faults.md`` for the full guide.  The fault experiments
(:mod:`repro.faults.experiments`) are intentionally *not* imported here —
they pull in :mod:`repro.core` and are reached through the campaign
registry instead.
"""

from .controller import FaultController, FaultWindow
from .injectors import (
    INJECTORS,
    Injector,
    configure_link_errors,
    injector_names,
    make_injector,
    register_injector,
)
from .plan import SCHEDULES, FaultEvent, FaultPlan, FaultSpec
from .report import (
    FaultTally,
    ResilienceReport,
    render_time_buckets,
    report_from_snapshot,
    time_buckets,
)

__all__ = [
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultTally",
    "FaultWindow",
    "INJECTORS",
    "Injector",
    "ResilienceReport",
    "SCHEDULES",
    "configure_link_errors",
    "injector_names",
    "make_injector",
    "register_injector",
    "render_time_buckets",
    "report_from_snapshot",
    "time_buckets",
]
