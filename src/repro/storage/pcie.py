"""PCIe-attached persistent stores: the baselines of Figures 9 and 10.

Every IO to a PCIe card pays the block-layer + driver + doorbell + DMA +
completion-interrupt path on top of the card's internal media time.  That
protocol overhead — single-digit microseconds at best — is what the DMI
attach point removes, and it is why the paper's latency chart separates
"technology" from "attach point".

Card profiles below are calibrated to era-typical published numbers:

* ``FLASH_X4_PCIE``  — NAND SSD on x4 PCIe,
* ``NVRAM_PCIE``     — flash-backed DRAM card (the "NVRAM" baseline),
* ``MRAM_PCIE``      — the vendor's PCIe STT-MRAM card (the paper quotes
  vendor-published numbers for this one).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Simulator
from ..units import transfer_ps, us_to_ps
from .block import BlockDevice


@dataclass(frozen=True)
class PcieCardProfile:
    """Latency composition of one PCIe persistent-memory card."""

    name: str
    #: software path: block layer, driver, doorbell, completion interrupt
    protocol_overhead_us: float
    #: card-internal 4K read service (controller + media)
    card_read_us: float
    #: card-internal 4K write service
    card_write_us: float
    #: DMA bandwidth of the link (decimal GB/s)
    link_gb_s: float = 3.2
    #: concurrent IOs the card can service internally
    parallelism: int = 4


FLASH_X4_PCIE = PcieCardProfile(
    "flash_x4_pcie", protocol_overhead_us=5.7, card_read_us=73.0, card_write_us=53.0
)
NVRAM_PCIE = PcieCardProfile(
    "nvram_pcie", protocol_overhead_us=5.7, card_read_us=14.0, card_write_us=18.0
)
MRAM_PCIE = PcieCardProfile(
    "mram_pcie", protocol_overhead_us=4.0, card_read_us=2.3, card_write_us=3.0
)


class PcieAttachedStore(BlockDevice):
    """A persistent store behind the PCIe bus."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: int,
        profile: PcieCardProfile,
        name: str = "",
    ):
        super().__init__(sim, capacity_bytes, name or profile.name)
        self.profile = profile
        self._slot_free_ps = [0] * profile.parallelism

    def _schedule(self, card_us: float, nbytes: int, complete) -> int:
        p = self.profile
        overhead = us_to_ps(p.protocol_overhead_us)
        dma = transfer_ps(nbytes, p.link_gb_s)
        slot = min(range(p.parallelism), key=lambda i: self._slot_free_ps[i])
        start = max(self.sim.now_ps + overhead, self._slot_free_ps[slot])
        finish = start + us_to_ps(card_us) + dma
        self._slot_free_ps[slot] = finish
        self.sim.call_at(finish, complete)
        # service is consistently protocol + card + DMA; waiting for an
        # internal slot (overlapped with the protocol path) is queueing
        return max(self.sim.now_ps, start - overhead)

    def _schedule_read(self, offset: int, nbytes: int, complete) -> int:
        pages = max(1, nbytes // 4096)
        return self._schedule(self.profile.card_read_us * pages, nbytes, complete)

    def _schedule_write(self, offset: int, nbytes: int, complete) -> int:
        pages = max(1, nbytes // 4096)
        return self._schedule(self.profile.card_write_us * pages, nbytes, complete)
