"""GPFS-style non-volatile write cache (the Table 4 experiment).

GPFS used the ConTutto-attached STT-MRAM "as a write cache in front of a
hard disk drive to aggregate small random writes into larger sequential
writes to the disk, thereby avoiding the latency hit of repositioning the
drive head for each of the original small writes" (Section 4.2).

:class:`NvWriteCache` implements that recovery-log pattern:

* an application write is staged into the NVM log (a bounded circular
  region) and acknowledged as soon as it is persistent there;
* a background destager drains full log segments as one large sequential
  write to the backing disk;
* if the log fills faster than the disk drains, application writes stall —
  the sustained-rate bound of any write-back cache.

Backpressure is strict: admission requires a free segment beyond the ones
already full, and stalled writers wait in FIFO order.  A destage
completion wakes only the *head* of the stall queue; each woken writer
re-runs the admission check, and once its space is accounted it
chain-wakes the next stalled writer only if admission space remains (a
freed segment can admit more than one small write).  A burst of stalled
writes can therefore never over-fill the log past ``segment_bytes *
segments``.  Writes that straddle the circular-log boundary are split
into two log IOs and acknowledged when both are persistent.

Reads are real too: the cache tracks which application extents are
currently staged in the log (FIFO residency, retired as the destager
drains segments).  A read fully covered by one resident extent is served
from the NVM log at NVM latency and attributed ``wcache.read_hit``; any
other read — destaged, never written, or straddling staged writes — goes
to the backing disk as ``wcache.read_miss``.  Both stages replace the
inner IO's ``storage.service`` in the journey, so a latency breakdown
separates log-served reads from disk-served ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import StorageError
from ..sim import Signal, Simulator
from ..telemetry import probe


@dataclass(frozen=True)
class WriteCacheConfig:
    """Log geometry and destage policy."""

    #: log segment size: one destage IO to the disk
    segment_bytes: int = 8 << 20
    #: number of segments in the NVM log
    segments: int = 16
    #: start destaging when this many segments are full
    destage_threshold: int = 2

    def __post_init__(self) -> None:
        if self.segment_bytes <= 0:
            raise StorageError(
                f"write cache segment_bytes must be positive (got "
                f"{self.segment_bytes})"
            )
        if self.segments < 2:
            raise StorageError(
                f"write cache needs >= 2 segments (got {self.segments}): "
                "admission requires one free segment while another destages"
            )
        if self.destage_threshold <= 0:
            raise StorageError(
                f"destage threshold must be >= 1 (got "
                f"{self.destage_threshold}): 0 would destage empty segments"
            )


class NvWriteCache:
    """Write-back cache: NVM log in front of a slow sequential-friendly disk."""

    def __init__(
        self,
        sim: Simulator,
        log_device,       # block-style device for the NVM log (e.g. PmemBlockDevice)
        backing_device,   # the disk being protected
        config: WriteCacheConfig = WriteCacheConfig(),
        name: str = "wcache",
    ):
        if config.segment_bytes * config.segments > log_device.capacity_bytes:
            raise StorageError(f"{name}: log larger than the NVM device")
        if config.destage_threshold > config.segments - 1:
            raise StorageError(
                f"{name}: destage threshold must leave one admission segment"
            )
        self.sim = sim
        self.log_device = log_device
        self.backing = backing_device
        self.config = config
        self.name = name
        self._log_cursor = 0
        self._full_segments = 0
        self._segment_fill = 0
        self._destage_active = False
        self._frozen = False
        #: FIFO of stalled writers' wake gates — one is woken per freed
        #: segment, and each re-runs admission before staging
        self._stalled: List[Signal] = []
        self._next_disk_offset = 0
        #: staged-but-not-destaged extents, oldest first:
        #: ``[app_offset, nbytes, log_offset]`` — the read path's index
        self._resident: List[List[int]] = []
        # Stats
        self.read_hits = 0
        self.read_misses = 0
        self.writes_staged = 0
        self.destages = 0
        self.stalls = 0
        self.wrap_splits = 0
        self.stage_errors = 0
        self.destage_errors = 0
        self.freezes = 0
        #: high-water mark of staged-but-not-destaged log bytes; bounded
        #: by ``segment_bytes * segments`` now that admission is strict
        self.max_occupancy_bytes = 0

    # -- application-facing read ---------------------------------------------

    def read(self, offset: int, nbytes: int) -> Signal:
        """Serve a read from the NVM log while the data is staged there.

        A hit requires full containment in one resident extent; anything
        else — destaged, never written, or spanning staged writes — is a
        miss against the backing disk.  The signal's value is None on
        success or the surfaced :class:`StorageError`.
        """
        done = Signal(f"{self.name}.r")
        journeys = None
        jid = None
        owned = False
        trace = probe.session
        if trace is not None:
            journeys = trace.journeys
            if journeys is not None:
                jid = journeys.current()
                if jid is None:
                    jid = journeys.begin(
                        "storage.read", offset, self.name, self.sim.now_ps
                    )
                    owned = jid is not None

        def finished(error) -> None:
            if owned and journeys is not None and jid is not None:
                journeys.finish(jid, self.sim.now_ps)
            done.trigger(error)

        extent = self._find_resident(offset, nbytes)
        if extent is None:
            self.read_misses += 1
            if trace is not None:
                trace.count("storage.wcache.read_misses")
            if journeys is not None:
                journeys.push(jid)
            inner = self.backing.submit_read(
                offset, nbytes, stage="wcache.read_miss"
            )
            if journeys is not None:
                journeys.pop()
            inner.add_waiter(finished)
            return done

        self.read_hits += 1
        if trace is not None:
            trace.count("storage.wcache.read_hits")
        # the staged copy may straddle the circular-log end even when the
        # original write did not retire there — split like the write path
        log_size = self.config.segment_bytes * self.config.segments
        log_offset = (extent[2] + (offset - extent[0])) % log_size
        first_part = min(nbytes, log_size - log_offset)
        parts = [(log_offset, first_part)]
        if first_part < nbytes:
            parts.append((0, nbytes - first_part))
        pending = {"count": len(parts), "error": None}

        def part_done(value) -> None:
            if isinstance(value, StorageError):
                pending["error"] = value
            pending["count"] -= 1
            if pending["count"] == 0:
                finished(pending["error"])

        for part_offset, part_bytes in parts:
            if journeys is not None:
                journeys.push(jid)
            inner = self.log_device.submit_read(
                part_offset, part_bytes, stage="wcache.read_hit"
            )
            if journeys is not None:
                journeys.pop()
            inner.add_waiter(part_done)
        return done

    def _find_resident(self, offset: int, nbytes: int) -> Optional[List[int]]:
        """Newest resident extent fully covering ``[offset, +nbytes)``.

        Newest-first so a rewrite of the same record hits its latest
        staged copy, not a stale one awaiting destage.
        """
        for extent in reversed(self._resident):
            if extent[0] <= offset and offset + nbytes <= extent[0] + extent[1]:
                return extent
        return None

    def _retire(self, nbytes: int) -> None:
        """Drop residency for the oldest ``nbytes`` of staged data — the
        log drains FIFO, so a destaged segment retires the oldest extents
        (the head extent shrinks when the segment boundary splits it)."""
        log_size = self.config.segment_bytes * self.config.segments
        remaining = nbytes
        while remaining > 0 and self._resident:
            head = self._resident[0]
            if head[1] <= remaining:
                remaining -= head[1]
                self._resident.pop(0)
            else:
                head[0] += remaining
                head[2] = (head[2] + remaining) % log_size
                head[1] -= remaining
                remaining = 0

    # -- application-facing write --------------------------------------------

    def write(self, offset: int, nbytes: int) -> Signal:
        """Stage a small write; acknowledged when persistent in the log.

        The signal's value is None on success or the :class:`StorageError`
        surfaced by the log device (injected IO failure past its retry
        bound)."""
        done = Signal(f"{self.name}.w")
        journeys = None
        jid = None
        owned = False
        trace = probe.session
        if trace is not None:
            journeys = trace.journeys
            if journeys is not None:
                jid = journeys.current()
                if jid is None:
                    jid = journeys.begin(
                        "storage.write", offset, self.name, self.sim.now_ps
                    )
                    owned = jid is not None
        self._admit(offset, nbytes, done, jid, owned, first=True)
        return done

    def _admit(
        self, offset: int, nbytes: int, done: Signal,
        jid: Optional[int], owned: bool, first: bool = False,
    ) -> None:
        """Run the admission check; stall (FIFO) while the log is full.

        A woken writer lands back here and re-checks — admission is never
        granted on the wake alone.  A re-checked writer that loses (the
        freed segment was consumed meanwhile) goes back to the *head* of
        the stall queue, preserving FIFO order; a new writer arriving
        while others are stalled queues behind them even if space just
        freed, so nobody jumps the queue.
        """
        if (self._full_segments >= self.config.segments - 1
                or (first and self._stalled)):
            if first:
                self.stalls += 1
                trace = probe.session
                if trace is not None:
                    trace.instant(
                        "storage", f"stall:{self.name}", self.sim.now_ps,
                        {"full_segments": self._full_segments},
                    )
                    trace.count("storage.wcache.stalls")
            gate = Signal(f"{self.name}.stall")
            if first:
                self._stalled.append(gate)
            else:
                self._stalled.insert(0, gate)
            gate.add_waiter(
                lambda _: self._admit(offset, nbytes, done, jid, owned)
            )
            return
        if jid is not None:
            journeys = self._journeys()
            if journeys is not None:
                # zero-length when admission did not stall
                journeys.stage_to(jid, "wcache.admit", self.sim.now_ps,
                                  kind="queue")
        self._stage(offset, nbytes, done, jid, owned)

    @staticmethod
    def _journeys():
        trace = probe.session
        return trace.journeys if trace is not None else None

    def _stage(
        self, offset: int, nbytes: int, done: Signal,
        jid: Optional[int], owned: bool,
    ) -> None:
        log_size = self.config.segment_bytes * self.config.segments
        log_offset = self._log_cursor
        self._log_cursor = (log_offset + nbytes) % log_size
        self._resident.append([offset, nbytes, log_offset])
        self._segment_fill += nbytes
        while self._segment_fill >= self.config.segment_bytes:
            self._segment_fill -= self.config.segment_bytes
            self._full_segments += 1
        occupancy = (
            self._full_segments * self.config.segment_bytes + self._segment_fill
        )
        if occupancy > self.max_occupancy_bytes:
            self.max_occupancy_bytes = occupancy

        # a write straddling the circular-log end becomes two log IOs;
        # the ack waits for both
        first_part = min(nbytes, log_size - log_offset)
        parts = [(log_offset, first_part)]
        if first_part < nbytes:
            parts.append((0, nbytes - first_part))
            self.wrap_splits += 1
            trace = probe.session
            if trace is not None:
                trace.count("storage.wcache.wrap_splits")
        pending = {"count": len(parts), "error": None}
        journeys = self._journeys()

        def staged(value) -> None:
            if isinstance(value, StorageError):
                pending["error"] = value
            pending["count"] -= 1
            if pending["count"]:
                return
            error = pending["error"]
            trace = probe.session
            if error is None:
                self.writes_staged += 1
                if trace is not None:
                    trace.count("storage.wcache.staged")
            else:
                self.stage_errors += 1
                if trace is not None:
                    trace.count("storage.wcache.stage_errors")
            if owned and journeys is not None and jid is not None:
                journeys.finish(jid, self.sim.now_ps)
            done.trigger(error)
            self._maybe_destage()

        for part_offset, part_bytes in parts:
            if journeys is not None:
                journeys.push(jid)
            inner = self.log_device.submit_write(part_offset, part_bytes)
            if journeys is not None:
                journeys.pop()
            inner.add_waiter(staged)

        # a freed segment can admit more than one small write: with this
        # writer's space accounted and its log IOs issued, chain-wake the
        # next stalled writer while admission space remains (the wake
        # re-runs the check).  After the IO issue, so acks stay FIFO.
        if self._stalled and self._full_segments < self.config.segments - 1:
            self._stalled.pop(0).trigger()

    # -- background destage ----------------------------------------------------

    def freeze_destage(self) -> None:
        """Suspend the destager (the ``storage.destage_stall`` injector);
        staged writes keep accumulating until the log fills and stalls."""
        self._frozen = True
        self.freezes += 1
        trace = probe.session
        if trace is not None:
            trace.count("storage.wcache.freezes")

    def unfreeze_destage(self) -> None:
        """Resume the destager and drain any backlog."""
        self._frozen = False
        self._maybe_destage()

    def _maybe_destage(self) -> None:
        if self._destage_active or self._frozen:
            return
        if self._full_segments < self.config.destage_threshold:
            return
        self._destage_active = True
        destage_start = self.sim.now_ps
        disk_offset = self._next_disk_offset
        self._next_disk_offset = (
            disk_offset + self.config.segment_bytes
        ) % self.backing.capacity_bytes
        journeys = self._journeys()
        jid = None
        if journeys is not None:
            jid = journeys.begin(
                "storage.destage", disk_offset, self.name, destage_start,
                lane="destage",
            )
            journeys.push(jid)
        io = self.backing.submit_write(disk_offset, self.config.segment_bytes)
        if journeys is not None:
            journeys.pop()

        def destaged(value) -> None:
            if journeys is not None and jid is not None:
                journeys.finish(jid, self.sim.now_ps)
            if isinstance(value, StorageError):
                # the segment stays full; back off and retry on the next
                # trigger (the retry IO lands at the same disk offset)
                self.destage_errors += 1
                self._next_disk_offset = disk_offset
                self._destage_active = False
                trace = probe.session
                if trace is not None:
                    trace.count("storage.wcache.destage_errors")
                self._maybe_destage()
                return
            self.destages += 1
            self._full_segments -= 1
            self._retire(self.config.segment_bytes)
            self._destage_active = False
            trace = probe.session
            if trace is not None:
                trace.complete(
                    "storage", f"destage:{self.name}",
                    destage_start, self.sim.now_ps,
                    {"bytes": self.config.segment_bytes},
                )
                trace.count("storage.wcache.destages")
            # one segment freed -> wake the head of the stall queue; it
            # re-runs admission and chain-wakes further writers only
            # while space remains
            if self._stalled:
                self._stalled.pop(0).trigger()
            self._maybe_destage()

        io.add_waiter(destaged)


class DirectStore:
    """No-cache comparison path: every IO goes straight to the device."""

    def __init__(self, device, name: str = "direct"):
        self.device = device
        self.name = name

    def write(self, offset: int, nbytes: int) -> Signal:
        return self.device.submit_write(offset, nbytes)

    def read(self, offset: int, nbytes: int) -> Signal:
        return self.device.submit_read(offset, nbytes)
