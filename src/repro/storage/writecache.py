"""GPFS-style non-volatile write cache (the Table 4 experiment).

GPFS used the ConTutto-attached STT-MRAM "as a write cache in front of a
hard disk drive to aggregate small random writes into larger sequential
writes to the disk, thereby avoiding the latency hit of repositioning the
drive head for each of the original small writes" (Section 4.2).

:class:`NvWriteCache` implements that recovery-log pattern:

* an application write is staged into the NVM log (a bounded circular
  region) and acknowledged as soon as it is persistent there;
* a background destager drains full log segments as one large sequential
  write to the backing disk;
* if the log fills faster than the disk drains, application writes stall —
  the sustained-rate bound of any write-back cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import StorageError
from ..sim import Signal, Simulator
from ..telemetry import probe


@dataclass(frozen=True)
class WriteCacheConfig:
    """Log geometry and destage policy."""

    #: log segment size: one destage IO to the disk
    segment_bytes: int = 8 << 20
    #: number of segments in the NVM log
    segments: int = 16
    #: start destaging when this many segments are full
    destage_threshold: int = 2


class NvWriteCache:
    """Write-back cache: NVM log in front of a slow sequential-friendly disk."""

    def __init__(
        self,
        sim: Simulator,
        log_device,       # block-style device for the NVM log (e.g. PmemBlockDevice)
        backing_device,   # the disk being protected
        config: WriteCacheConfig = WriteCacheConfig(),
        name: str = "wcache",
    ):
        if config.segment_bytes * config.segments > log_device.capacity_bytes:
            raise StorageError(f"{name}: log larger than the NVM device")
        if config.destage_threshold > config.segments - 1:
            raise StorageError(
                f"{name}: destage threshold must leave one admission segment"
            )
        self.sim = sim
        self.log_device = log_device
        self.backing = backing_device
        self.config = config
        self.name = name
        self._log_cursor = 0
        self._full_segments = 0
        self._segment_fill = 0
        self._destage_active = False
        self._stalled: List[Signal] = []
        self._next_disk_offset = 0
        # Stats
        self.writes_staged = 0
        self.destages = 0
        self.stalls = 0

    # -- application-facing write --------------------------------------------

    def write(self, offset: int, nbytes: int) -> Signal:
        """Stage a small write; acknowledged when persistent in the log."""
        done = Signal(f"{self.name}.w")
        if self._full_segments >= self.config.segments - 1:
            # log (almost) full: wait for a destage to free a segment
            self.stalls += 1
            trace = probe.session
            if trace is not None:
                trace.instant(
                    "storage", f"stall:{self.name}", self.sim.now_ps,
                    {"full_segments": self._full_segments},
                )
                trace.count("storage.wcache.stalls")
            gate = Signal(f"{self.name}.stall")
            self._stalled.append(gate)
            gate.add_waiter(lambda _: self._stage(offset, nbytes, done))
            return done
        self._stage(offset, nbytes, done)
        return done

    def _stage(self, offset: int, nbytes: int, done: Signal) -> None:
        log_offset = self._log_cursor
        self._log_cursor = (log_offset + nbytes) % (
            self.config.segment_bytes * self.config.segments
        )
        self._segment_fill += nbytes
        while self._segment_fill >= self.config.segment_bytes:
            self._segment_fill -= self.config.segment_bytes
            self._full_segments += 1
        inner = self.log_device.submit_write(log_offset, nbytes)

        def staged(_):
            self.writes_staged += 1
            trace = probe.session
            if trace is not None:
                trace.count("storage.wcache.staged")
            done.trigger(None)
            self._maybe_destage()

        inner.add_waiter(staged)

    # -- background destage ----------------------------------------------------

    def _maybe_destage(self) -> None:
        if self._destage_active:
            return
        if self._full_segments < self.config.destage_threshold:
            return
        self._destage_active = True
        destage_start = self.sim.now_ps
        disk_offset = self._next_disk_offset
        self._next_disk_offset = (
            disk_offset + self.config.segment_bytes
        ) % self.backing.capacity_bytes
        io = self.backing.submit_write(disk_offset, self.config.segment_bytes)

        def destaged(_):
            self.destages += 1
            self._full_segments -= 1
            self._destage_active = False
            trace = probe.session
            if trace is not None:
                trace.complete(
                    "storage", f"destage:{self.name}",
                    destage_start, self.sim.now_ps,
                    {"bytes": self.config.segment_bytes},
                )
                trace.count("storage.wcache.destages")
            # re-admit every stalled writer: the admission condition is
            # log occupancy, which just dropped for all of them alike
            stalled, self._stalled = self._stalled, []
            for gate in stalled:
                gate.trigger()
            self._maybe_destage()

        io.add_waiter(destaged)


class DirectStore:
    """No-cache comparison path: every write goes straight to the device."""

    def __init__(self, device, name: str = "direct"):
        self.device = device
        self.name = name

    def write(self, offset: int, nbytes: int) -> Signal:
        return self.device.submit_write(offset, nbytes)
