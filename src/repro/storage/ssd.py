"""SAS SSD model (the Table 4 mid-point: 400 GB SAS SSD, 15K IOPS).

A flash SSD amortizes NAND page latencies behind an internal controller
with channel parallelism, but every synchronous small IO still pays the
SAS protocol/firmware overhead plus the (possibly amortized) flash
operation — which lands single-thread sync IOPS in the tens of thousands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Simulator
from ..units import us_to_ps
from .block import BlockDevice


@dataclass(frozen=True)
class SsdProfile:
    """Performance characteristics of an enterprise SAS SSD."""

    #: SAS transport + drive firmware per IO
    interface_overhead_us: float = 25.0
    #: effective 4K read service time inside the drive
    read_us: float = 60.0
    #: effective 4K write service time (steady-state, incl. FTL amortization)
    write_us: float = 40.0
    #: independent internal channels (bounded parallelism under queue depth)
    channels: int = 8


class SolidStateDrive(BlockDevice):
    """SAS SSD: per-IO protocol overhead + channel-parallel flash service."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: int,
        profile: SsdProfile = SsdProfile(),
        name: str = "ssd",
    ):
        super().__init__(sim, capacity_bytes, name)
        self.profile = profile
        self._channel_free_ps = [0] * profile.channels

    def _schedule(self, service_us: float, offset: int, complete) -> int:
        channel = (offset // 4096) % self.profile.channels
        overhead = us_to_ps(self.profile.interface_overhead_us)
        start = max(self.sim.now_ps + overhead, self._channel_free_ps[channel])
        finish = start + us_to_ps(service_us)
        self._channel_free_ps[channel] = finish
        self.sim.call_at(finish, complete)
        # service is consistently overhead + flash time; waiting for the
        # internal channel (overlapped with the overhead) is queueing
        return max(self.sim.now_ps, start - overhead)

    def _schedule_read(self, offset: int, nbytes: int, complete) -> int:
        pages = max(1, nbytes // 4096)
        return self._schedule(self.profile.read_us * pages, offset, complete)

    def _schedule_write(self, offset: int, nbytes: int, complete) -> int:
        pages = max(1, nbytes // 4096)
        return self._schedule(self.profile.write_us * pages, offset, complete)
