"""Block-device interface for the storage experiments.

The FIO (Figures 9, 10) and GPFS (Table 4) experiments compare *persistent
stores* across technologies and attach points.  Everything in this package
presents the same interface: submit a read or write of ``nbytes`` at
``offset``, get a completion signal.  Latency composition differs per
device and per attach point, which is exactly what those figures measure.
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageError
from ..sim import LatencyRecorder, Signal, Simulator
from ..telemetry import probe

SECTOR_BYTES = 512
DEFAULT_IO_BYTES = 4096


class BlockDevice:
    """Abstract block store with timed reads and writes."""

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str):
        if capacity_bytes <= 0:
            raise StorageError(f"{name}: capacity must be positive")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.read_latency = LatencyRecorder(f"{name}.read")
        self.write_latency = LatencyRecorder(f"{name}.write")
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- interface ----------------------------------------------------------

    def submit_read(self, offset: int, nbytes: int) -> Signal:
        """Read; the signal fires (with None — block data is not modeled
        functionally at this layer) when the IO completes."""
        self._check(offset, nbytes)
        done = Signal(f"{self.name}.r@{offset:#x}")
        t0 = self.sim.now_ps

        def complete():
            self.reads += 1
            self.bytes_read += nbytes
            self.read_latency.record(self.sim.now_ps - t0)
            trace = probe.session
            if trace is not None:
                trace.complete(
                    "storage", f"rd:{self.name}", t0, self.sim.now_ps,
                    {"bytes": nbytes},
                )
                trace.count("storage.reads")
                trace.count("storage.bytes_read", nbytes)
            done.trigger(None)

        self._schedule_read(offset, nbytes, complete)
        return done

    def submit_write(self, offset: int, nbytes: int) -> Signal:
        self._check(offset, nbytes)
        done = Signal(f"{self.name}.w@{offset:#x}")
        t0 = self.sim.now_ps

        def complete():
            self.writes += 1
            self.bytes_written += nbytes
            self.write_latency.record(self.sim.now_ps - t0)
            trace = probe.session
            if trace is not None:
                trace.complete(
                    "storage", f"wr:{self.name}", t0, self.sim.now_ps,
                    {"bytes": nbytes},
                )
                trace.count("storage.writes")
                trace.count("storage.bytes_written", nbytes)
            done.trigger(None)

        self._schedule_write(offset, nbytes, complete)
        return done

    # -- hooks for subclasses --------------------------------------------------

    def _schedule_read(self, offset: int, nbytes: int, complete) -> None:
        raise NotImplementedError

    def _schedule_write(self, offset: int, nbytes: int, complete) -> None:
        raise NotImplementedError

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.capacity_bytes:
            raise StorageError(
                f"{self.name}: IO [{offset:#x}, +{nbytes}) outside device"
            )
        if offset % SECTOR_BYTES or nbytes % SECTOR_BYTES:
            raise StorageError(f"{self.name}: IO not sector-aligned")
