"""Block-device interface for the storage experiments.

The FIO (Figures 9, 10) and GPFS (Table 4) experiments compare *persistent
stores* across technologies and attach points.  Everything in this package
presents the same interface: submit a read or write of ``nbytes`` at
``offset``, get a completion signal.  Latency composition differs per
device and per attach point, which is exactly what those figures measure.

Two cross-cutting concerns live at this layer:

**Attribution.**  Every IO stages into a journey: the queueing delay in
front of the device (``storage.queue``) and the device service time
(``storage.service``) partition the IO's latency.  When an upper layer
(FIO, GPFS, the write cache) already opened a journey it pushes the id
onto the tracker's context stack and the device stages into it; a bare
``submit_*`` call opens — and finishes — its own journey.

**Fault injection.**  A device carries an optional :class:`IoFaultModel`
(installed by the ``storage.io_errors`` injector) and a
``slow_extra_ps`` penalty (``storage.slow_disk``).  A failed attempt is
retried up to the model's bound; exhausted retries surface a typed
:class:`~repro.errors.StorageError` as the completion signal's *value* —
callers that ignore values keep working, callers that care (FIO, GPFS,
the destager) check ``isinstance(value, StorageError)``.
"""

from __future__ import annotations

from typing import Optional

from ..errors import StorageError
from ..sim import LatencyRecorder, Rng, Signal, Simulator
from ..telemetry import probe

SECTOR_BYTES = 512
DEFAULT_IO_BYTES = 4096


class IoFaultModel:
    """Injected IO-failure state for one block device.

    ``force_failures`` fails the next N attempts deterministically;
    ``rate`` fails each attempt with that probability using the
    injector's forked RNG (deterministic per plan/seed).  ``max_retries``
    bounds how often the device retries before surfacing the error.
    """

    def __init__(
        self,
        rate: float = 0.0,
        force_failures: int = 0,
        max_retries: int = 2,
        rng: Optional[Rng] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise StorageError(f"IO error rate {rate} outside [0, 1]")
        if max_retries < 0:
            raise StorageError("max_retries must be >= 0")
        self.rate = float(rate)
        self.force_failures = int(force_failures)
        self.max_retries = int(max_retries)
        self.rng = rng

    def should_fail(self) -> bool:
        """Consume one attempt: True when this attempt is injected-failed."""
        if self.force_failures > 0:
            self.force_failures -= 1
            return True
        return bool(
            self.rate and self.rng is not None and self.rng.chance(self.rate)
        )


class BlockDevice:
    """Abstract block store with timed reads and writes."""

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str):
        if capacity_bytes <= 0:
            raise StorageError(f"{name}: capacity must be positive")
        self.sim = sim
        self.capacity_bytes = capacity_bytes
        self.name = name
        self.read_latency = LatencyRecorder(f"{name}.read")
        self.write_latency = LatencyRecorder(f"{name}.write")
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: injected fault state (None = healthy); see IoFaultModel
        self.io_fault: Optional[IoFaultModel] = None
        #: injected extra latency per IO (storage.slow_disk window)
        self.slow_extra_ps = 0
        self.io_errors = 0
        self.io_retries = 0
        self.io_failures = 0
        self.slowed_ios = 0

    # -- interface ----------------------------------------------------------

    def submit_read(
        self, offset: int, nbytes: int, stage: Optional[str] = None
    ) -> Signal:
        """Read; the signal fires when the IO completes.  The value is
        None on success (block data is not modeled functionally at this
        layer) or a :class:`StorageError` when injected failures exhaust
        the retry bound.  ``stage`` renames the journey's service stage
        (the write cache attributes ``wcache.read_hit`` /
        ``wcache.read_miss`` instead of ``storage.service``)."""
        return self._submit("read", offset, nbytes, stage=stage)

    def submit_write(
        self, offset: int, nbytes: int, stage: Optional[str] = None
    ) -> Signal:
        return self._submit("write", offset, nbytes, stage=stage)

    def _submit(
        self, op: str, offset: int, nbytes: int, stage: Optional[str] = None
    ) -> Signal:
        self._check(offset, nbytes)
        short = "r" if op == "read" else "w"
        done = Signal(f"{self.name}.{short}@{offset:#x}")
        t0 = self.sim.now_ps
        schedule = self._schedule_read if op == "read" else self._schedule_write
        service_stage = stage or "storage.service"
        journeys = None
        jid = None
        owned = False
        trace = probe.session
        if trace is not None:
            journeys = trace.journeys
            if journeys is not None:
                jid = journeys.current()
                if jid is None:
                    jid = journeys.begin(f"storage.{op}", offset, self.name, t0)
                    owned = jid is not None
        state = {"attempt": 0, "queue_end": t0, "slowed": False}

        def stage_to(end_ps: int) -> None:
            if journeys is not None and jid is not None:
                journeys.stage_to(jid, "storage.queue", state["queue_end"],
                                  kind="queue")
                journeys.stage_to(jid, service_stage, end_ps)

        def finish(error: Optional[StorageError]) -> None:
            now = self.sim.now_ps
            trace = probe.session
            if error is None:
                if op == "read":
                    self.reads += 1
                    self.bytes_read += nbytes
                    self.read_latency.record(now - t0)
                else:
                    self.writes += 1
                    self.bytes_written += nbytes
                    self.write_latency.record(now - t0)
                if trace is not None:
                    span = "rd" if op == "read" else "wr"
                    trace.complete(
                        "storage", f"{span}:{self.name}", t0, now,
                        {"bytes": nbytes},
                    )
                    if op == "read":
                        trace.count("storage.reads")
                        trace.count("storage.bytes_read", nbytes)
                    else:
                        trace.count("storage.writes")
                        trace.count("storage.bytes_written", nbytes)
            else:
                self.io_failures += 1
                if trace is not None:
                    trace.instant("storage", f"io_error:{self.name}", now,
                                  {"op": op, "offset": offset})
                    trace.count("storage.io_failed")
            stage_to(now)
            if owned:
                journeys.finish(jid, now)
            done.trigger(error)

        def complete() -> None:
            now = self.sim.now_ps
            if self.slow_extra_ps and not state["slowed"]:
                # a slow-disk window delays every IO once, after service
                state["slowed"] = True
                self.slowed_ios += 1
                trace = probe.session
                if trace is not None:
                    trace.count("storage.slowed_ios")
                self.sim.call_after(self.slow_extra_ps, complete)
                return
            fault = self.io_fault
            if fault is not None and fault.should_fail():
                self.io_errors += 1
                trace = probe.session
                if trace is not None:
                    trace.count("storage.io_errors")
                if state["attempt"] < fault.max_retries:
                    state["attempt"] += 1
                    self.io_retries += 1
                    if trace is not None:
                        trace.count("storage.io_retries")
                    # account the failed attempt before re-queueing
                    stage_to(now)
                    state["queue_end"] = now
                    queue_end = schedule(offset, nbytes, complete)
                    if queue_end is not None:
                        state["queue_end"] = queue_end
                    return
                finish(StorageError(
                    f"{self.name}: injected IO error on {op} at {offset:#x} "
                    f"({fault.max_retries} retries exhausted)"
                ))
                return
            finish(None)

        queue_end = schedule(offset, nbytes, complete)
        if queue_end is not None:
            state["queue_end"] = queue_end
        return done

    # -- hooks for subclasses --------------------------------------------------

    def _schedule_read(self, offset: int, nbytes: int, complete) -> Optional[int]:
        """Schedule the IO; returns the sim time queueing ends (service
        starts), or None when the device does not distinguish the two."""
        raise NotImplementedError

    def _schedule_write(self, offset: int, nbytes: int, complete) -> Optional[int]:
        raise NotImplementedError

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.capacity_bytes:
            raise StorageError(
                f"{self.name}: IO [{offset:#x}, +{nbytes}) outside device"
            )
        if offset % SECTOR_BYTES or nbytes % SECTOR_BYTES:
            raise StorageError(f"{self.name}: IO not sector-aligned")
