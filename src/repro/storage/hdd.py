"""Rotating hard-disk model (the Table 4 baseline: 1.1 TB SAS HDD, 75 IOPS).

Small random writes on a disk pay a head seek plus rotational latency per
IO — the exact pathology the GPFS/MRAM write cache removes by aggregating
them into large sequential writes.  The model tracks head position so
sequential streams skip the seek.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Simulator
from ..units import ms_to_ps, transfer_ps, us_to_ps
from .block import BlockDevice


@dataclass(frozen=True)
class HddGeometry:
    """Performance characteristics of a 7.2K SAS drive."""

    avg_seek_ms: float = 8.0
    rpm: int = 7_200
    media_mb_s: float = 150.0
    #: SAS command + firmware overhead per IO
    interface_overhead_us: float = 200.0

    @property
    def half_rotation_ms(self) -> float:
        return 60_000.0 / self.rpm / 2


class HardDiskDrive(BlockDevice):
    """A spinning disk with seek/rotate/transfer timing."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: int,
        geometry: HddGeometry = HddGeometry(),
        name: str = "hdd",
    ):
        super().__init__(sim, capacity_bytes, name)
        self.geometry = geometry
        self._head_offset = -1  # parked: the first IO always seeks
        self._busy_until_ps = 0
        self.seeks = 0
        self.sequential_hits = 0

    def _service_time_ps(self, offset: int, nbytes: int) -> int:
        g = self.geometry
        service = us_to_ps(g.interface_overhead_us)
        if offset != self._head_offset:
            self.seeks += 1
            service += ms_to_ps(g.avg_seek_ms) + ms_to_ps(g.half_rotation_ms)
        else:
            self.sequential_hits += 1
        service += transfer_ps(nbytes, g.media_mb_s / 1_000)
        return service

    def _do_io(self, offset: int, nbytes: int, complete) -> int:
        start = max(self.sim.now_ps, self._busy_until_ps)
        finish = start + self._service_time_ps(offset, nbytes)
        self._busy_until_ps = finish
        self._head_offset = offset + nbytes
        self.sim.call_at(finish, complete)
        return start  # queueing ends when the head starts moving

    def _schedule_read(self, offset: int, nbytes: int, complete) -> int:
        return self._do_io(offset, nbytes, complete)

    def _schedule_write(self, offset: int, nbytes: int, complete) -> int:
        return self._do_io(offset, nbytes, complete)
