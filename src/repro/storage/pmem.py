"""pmem.io-style persistent-memory driver over a DMI memory region.

The paper's STT-MRAM/NVDIMM experiments run "the full standard Linux stack
utilizing either the pmem.io driver stack or raw slram driver"
(Section 4).  This module is the pmem analogue: byte-addressable access to
a non-volatile region of the processor's real-address space, with
persistence guaranteed by the ConTutto ``flush`` command the paper added
to MBS for exactly this purpose (Section 4.2).

Access timing is *real*: a 4K transfer decomposes into 128-byte cache-line
commands issued through the socket's DMI machinery with bounded
memory-level parallelism; nothing here is a canned latency number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import StorageError
from ..processor.power8 import Power8Socket
from ..sim import Process, Signal, Simulator
from ..units import CACHE_LINE_BYTES, ns_to_ps


@dataclass(frozen=True)
class PmemConfig:
    """Driver-path parameters."""

    #: concurrent outstanding line reads (load MLP of the copy loop)
    read_window: int = 6
    #: concurrent outstanding line writes (stores are posted deeper)
    write_window: int = 16
    #: software entry/exit overhead per driver call
    driver_overhead_ps: int = ns_to_ps(500)


class PmemRegion:
    """Byte-addressable persistent region behind a DMI channel."""

    def __init__(
        self,
        sim: Simulator,
        socket: Power8Socket,
        base: int,
        size: int,
        config: PmemConfig = PmemConfig(),
        name: str = "pmem0",
    ):
        region = socket.memory_map.region_at(base)
        if region.is_volatile:
            raise StorageError(f"{name}: region at {base:#x} is volatile DRAM")
        if base + size > region.base + region.os_size:
            raise StorageError(f"{name}: window exceeds the region's OS size")
        self.sim = sim
        self.socket = socket
        self.base = base
        self.size = size
        self.config = config
        self.name = name
        self.channel = region.channel
        # Stats
        self.persists = 0

    # -- helpers -------------------------------------------------------------

    def _lines(self, offset: int, nbytes: int) -> List[int]:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise StorageError(f"{self.name}: access outside the region")
        first = (self.base + offset) // CACHE_LINE_BYTES
        last = (self.base + offset + nbytes - 1) // CACHE_LINE_BYTES
        return [line * CACHE_LINE_BYTES for line in range(first, last + 1)]

    # -- operations -----------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> Process:
        """Read bytes; process result is the data."""
        lines = self._lines(offset, nbytes)

        def run():
            yield self.config.driver_overhead_ps
            issued: List[Signal] = []
            window: List[Signal] = []
            for addr in lines:
                if len(window) >= self.config.read_window:
                    oldest = window.pop(0)
                    if not oldest.triggered:
                        yield oldest
                sig = self.socket.read_line(addr)
                issued.append(sig)
                window.append(sig)
            for sig in window:
                if not sig.triggered:
                    yield sig
            blob = b"".join(sig.value for sig in issued)
            start_cut = (self.base + offset) % CACHE_LINE_BYTES
            return blob[start_cut : start_cut + nbytes]

        return Process(self.sim, run(), name=f"{self.name}.read")

    def write(self, offset: int, data: bytes) -> Process:
        """Write bytes (line-aligned fast path; RMW at the edges)."""
        lines = self._lines(offset, len(data))

        def run():
            yield self.config.driver_overhead_ps
            sigs: List[Signal] = []
            cursor = 0
            for addr in lines:
                line_off = max(self.base + offset, addr) - addr
                take = min(CACHE_LINE_BYTES - line_off, len(data) - cursor)
                chunk = data[cursor : cursor + take]
                cursor += take
                if len(sigs) >= self.config.write_window:
                    oldest = sigs.pop(0)
                    if not oldest.triggered:
                        yield oldest
                if take == CACHE_LINE_BYTES:
                    sigs.append(self.socket.write_line(addr, chunk))
                else:
                    line_data = bytearray(CACHE_LINE_BYTES)
                    line_data[line_off : line_off + take] = chunk
                    mask = bytearray(CACHE_LINE_BYTES)
                    for i in range(line_off, line_off + take):
                        mask[i] = 1
                    slot, local = self.socket._route(addr)
                    sigs.append(
                        slot.host_mc.partial_write(local, bytes(line_data), bytes(mask))
                    )
            for sig in sigs:
                if not sig.triggered:
                    yield sig
            return len(data)

        return Process(self.sim, run(), name=f"{self.name}.write")

    def persist(self) -> Signal:
        """Flush + sync: drain the buffer's write pipeline (ConTutto flush)."""
        self.persists += 1
        return self.socket.flush_channel(self.channel)


class PmemBlockDevice:
    """Adapts a :class:`PmemRegion` to the block-device interface.

    Writes are persisted (flush) before completing — the sync-write
    semantics GPFS and FIO measure.
    """

    def __init__(self, region: PmemRegion, persist_writes: bool = True):
        self.region = region
        self.sim = region.sim
        self.capacity_bytes = region.size
        self.name = f"{region.name}.blk"
        self.persist_writes = persist_writes
        self.reads = 0
        self.writes = 0

    def submit_read(self, offset: int, nbytes: int) -> Signal:
        done = Signal(f"{self.name}.r")
        proc = self.region.read(offset, nbytes)
        proc.done.add_waiter(lambda _: (self._count_read(), done.trigger(None)))
        return done

    def _count_read(self):
        self.reads += 1

    def submit_write(self, offset: int, nbytes: int) -> Signal:
        done = Signal(f"{self.name}.w")
        proc = self.region.write(offset, bytes(nbytes))

        def after_write(_):
            self.writes += 1
            if self.persist_writes:
                self.region.persist().add_waiter(lambda __: done.trigger(None))
            else:
                done.trigger(None)

        proc.done.add_waiter(after_write)
        return done
