"""pmem.io-style persistent-memory driver over a DMI memory region.

The paper's STT-MRAM/NVDIMM experiments run "the full standard Linux stack
utilizing either the pmem.io driver stack or raw slram driver"
(Section 4).  This module is the pmem analogue: byte-addressable access to
a non-volatile region of the processor's real-address space, with
persistence guaranteed by the ConTutto ``flush`` command the paper added
to MBS for exactly this purpose (Section 4.2).

Access timing is *real*: a 4K transfer decomposes into 128-byte cache-line
commands issued through the socket's DMI machinery with bounded
memory-level parallelism; nothing here is a canned latency number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import StorageError
from ..processor.power8 import Power8Socket
from ..sim import Process, Signal, Simulator
from ..telemetry import probe
from ..units import CACHE_LINE_BYTES, ns_to_ps
from .block import IoFaultModel


def _tracker():
    """The ambient journey tracker, or None when telemetry is off."""
    trace = probe.session
    return trace.journeys if trace is not None else None


@dataclass(frozen=True)
class PmemConfig:
    """Driver-path parameters."""

    #: concurrent outstanding line reads (load MLP of the copy loop)
    read_window: int = 6
    #: concurrent outstanding line writes (stores are posted deeper)
    write_window: int = 16
    #: software entry/exit overhead per driver call
    driver_overhead_ps: int = ns_to_ps(500)


class PmemRegion:
    """Byte-addressable persistent region behind a DMI channel."""

    def __init__(
        self,
        sim: Simulator,
        socket: Power8Socket,
        base: int,
        size: int,
        config: PmemConfig = PmemConfig(),
        name: str = "pmem0",
    ):
        region = socket.memory_map.region_at(base)
        if region.is_volatile:
            raise StorageError(f"{name}: region at {base:#x} is volatile DRAM")
        if base + size > region.base + region.os_size:
            raise StorageError(f"{name}: window exceeds the region's OS size")
        self.sim = sim
        self.socket = socket
        self.base = base
        self.size = size
        self.config = config
        self.name = name
        self.channel = region.channel
        # Stats
        self.persists = 0

    # -- helpers -------------------------------------------------------------

    def _lines(self, offset: int, nbytes: int) -> List[int]:
        if offset < 0 or nbytes <= 0 or offset + nbytes > self.size:
            raise StorageError(f"{self.name}: access outside the region")
        first = (self.base + offset) // CACHE_LINE_BYTES
        last = (self.base + offset + nbytes - 1) // CACHE_LINE_BYTES
        return [line * CACHE_LINE_BYTES for line in range(first, last + 1)]

    # -- operations -----------------------------------------------------------

    def read(self, offset: int, nbytes: int) -> Process:
        """Read bytes; process result is the data.

        Stages ``storage.driver`` and ``storage.lines`` into the calling
        layer's journey (the tracker's ``current()`` at call time); each
        line command also opens its own child DMI journey via the
        context stack.
        """
        lines = self._lines(offset, nbytes)
        journeys = _tracker()
        jid = journeys.current() if journeys is not None else None

        def run():
            yield self.config.driver_overhead_ps
            if journeys is not None and jid is not None:
                journeys.stage_to(jid, "storage.driver", self.sim.now_ps)
            issued: List[Signal] = []
            window: List[Signal] = []
            for addr in lines:
                if len(window) >= self.config.read_window:
                    oldest = window.pop(0)
                    if not oldest.triggered:
                        yield oldest
                if journeys is not None:
                    journeys.push(jid)
                sig = self.socket.read_line(addr)
                if journeys is not None:
                    journeys.pop()
                issued.append(sig)
                window.append(sig)
            for sig in window:
                if not sig.triggered:
                    yield sig
            if journeys is not None and jid is not None:
                journeys.stage_to(jid, "storage.lines", self.sim.now_ps)
            blob = b"".join(sig.value for sig in issued)
            start_cut = (self.base + offset) % CACHE_LINE_BYTES
            return blob[start_cut : start_cut + nbytes]

        return Process(self.sim, run(), name=f"{self.name}.read")

    def write(self, offset: int, data: bytes) -> Process:
        """Write bytes (line-aligned fast path; RMW at the edges)."""
        lines = self._lines(offset, len(data))
        journeys = _tracker()
        jid = journeys.current() if journeys is not None else None

        def run():
            yield self.config.driver_overhead_ps
            if journeys is not None and jid is not None:
                journeys.stage_to(jid, "storage.driver", self.sim.now_ps)
            sigs: List[Signal] = []
            cursor = 0
            for addr in lines:
                line_off = max(self.base + offset, addr) - addr
                take = min(CACHE_LINE_BYTES - line_off, len(data) - cursor)
                chunk = data[cursor : cursor + take]
                cursor += take
                if len(sigs) >= self.config.write_window:
                    oldest = sigs.pop(0)
                    if not oldest.triggered:
                        yield oldest
                if journeys is not None:
                    journeys.push(jid)
                if take == CACHE_LINE_BYTES:
                    sigs.append(self.socket.write_line(addr, chunk))
                else:
                    line_data = bytearray(CACHE_LINE_BYTES)
                    line_data[line_off : line_off + take] = chunk
                    mask = bytearray(CACHE_LINE_BYTES)
                    for i in range(line_off, line_off + take):
                        mask[i] = 1
                    slot, local = self.socket._route(addr)
                    sigs.append(
                        slot.host_mc.partial_write(local, bytes(line_data), bytes(mask))
                    )
                if journeys is not None:
                    journeys.pop()
            for sig in sigs:
                if not sig.triggered:
                    yield sig
            if journeys is not None and jid is not None:
                journeys.stage_to(jid, "storage.lines", self.sim.now_ps)
            return len(data)

        return Process(self.sim, run(), name=f"{self.name}.write")

    def persist(self) -> Signal:
        """Flush + sync: drain the buffer's write pipeline (ConTutto flush)."""
        self.persists += 1
        return self.socket.flush_channel(self.channel)


class PmemBlockDevice:
    """Adapts a :class:`PmemRegion` to the block-device interface.

    Writes are persisted (flush) before completing — the sync-write
    semantics GPFS and FIO measure.  Like :class:`BlockDevice`, the
    adapter carries injectable fault state (``io_fault``,
    ``slow_extra_ps``) and stages its IOs into the enclosing journey —
    or opens its own when called bare.
    """

    def __init__(self, region: PmemRegion, persist_writes: bool = True):
        self.region = region
        self.sim = region.sim
        self.capacity_bytes = region.size
        self.name = f"{region.name}.blk"
        self.persist_writes = persist_writes
        self.reads = 0
        self.writes = 0
        #: injected fault state (None = healthy); see IoFaultModel
        self.io_fault: Optional[IoFaultModel] = None
        #: injected extra latency per IO (storage.slow_disk window)
        self.slow_extra_ps = 0
        self.io_errors = 0
        self.io_retries = 0
        self.io_failures = 0
        self.slowed_ios = 0

    # -- shared plumbing -----------------------------------------------------

    def _open_journey(self, op: str, offset: int):
        """(tracker, jid, owned): the enclosing journey, or a fresh one."""
        journeys = _tracker()
        if journeys is None:
            return None, None, False
        jid = journeys.current()
        if jid is not None:
            return journeys, jid, False
        jid = journeys.begin(f"storage.{op}", offset, self.name, self.sim.now_ps)
        return journeys, jid, jid is not None

    def _fault_check(self, op: str, offset: int, state: dict):
        """None (healthy attempt), "retry", or the surfaced StorageError."""
        fault = self.io_fault
        if fault is None or not fault.should_fail():
            return None
        self.io_errors += 1
        trace = probe.session
        if trace is not None:
            trace.count("storage.io_errors")
        if state["attempt"] < fault.max_retries:
            state["attempt"] += 1
            self.io_retries += 1
            if trace is not None:
                trace.count("storage.io_retries")
            return "retry"
        self.io_failures += 1
        if trace is not None:
            trace.instant("storage", f"io_error:{self.name}", self.sim.now_ps,
                          {"op": op, "offset": offset})
            trace.count("storage.io_failed")
        return StorageError(
            f"{self.name}: injected IO error on {op} at {offset:#x} "
            f"({fault.max_retries} retries exhausted)"
        )

    def _finish(self, done: Signal, journeys, jid, owned: bool,
                error, state: dict) -> None:
        if self.slow_extra_ps and not state.get("slowed"):
            state["slowed"] = True
            self.slowed_ios += 1
            trace = probe.session
            if trace is not None:
                trace.count("storage.slowed_ios")
            self.sim.call_after(
                self.slow_extra_ps,
                self._finish, done, journeys, jid, owned, error, state,
            )
            return
        if journeys is not None and jid is not None:
            # trailing service: retry gaps and the slow-disk penalty
            journeys.stage_to(
                jid, state.get("stage") or "storage.service", self.sim.now_ps
            )
            if owned:
                journeys.finish(jid, self.sim.now_ps)
        done.trigger(error)

    # -- interface -----------------------------------------------------------

    def submit_read(
        self, offset: int, nbytes: int, stage: Optional[str] = None
    ) -> Signal:
        done = Signal(f"{self.name}.r")
        journeys, jid, owned = self._open_journey("read", offset)
        state = {"attempt": 0, "stage": stage}

        def attempt() -> None:
            if journeys is not None:
                journeys.push(jid)
            proc = self.region.read(offset, nbytes)
            if journeys is not None:
                journeys.pop()
            proc.done.add_waiter(after_read)

        def after_read(_) -> None:
            verdict = self._fault_check("read", offset, state)
            if verdict == "retry":
                attempt()
                return
            if verdict is None:
                self.reads += 1
            self._finish(done, journeys, jid, owned, verdict, state)

        attempt()
        return done

    def submit_write(
        self, offset: int, nbytes: int, stage: Optional[str] = None
    ) -> Signal:
        done = Signal(f"{self.name}.w")
        journeys, jid, owned = self._open_journey("write", offset)
        state = {"attempt": 0, "stage": stage}

        def attempt() -> None:
            if journeys is not None:
                journeys.push(jid)
            proc = self.region.write(offset, bytes(nbytes))
            if journeys is not None:
                journeys.pop()
            proc.done.add_waiter(after_write)

        def after_write(_) -> None:
            verdict = self._fault_check("write", offset, state)
            if verdict == "retry":
                attempt()
                return
            if verdict is not None:
                self._finish(done, journeys, jid, owned, verdict, state)
                return
            self.writes += 1
            if not self.persist_writes:
                self._finish(done, journeys, jid, owned, None, state)
                return
            if journeys is not None:
                journeys.push(jid)
            flushed = self.region.persist()
            if journeys is not None:
                journeys.pop()

            def after_persist(__) -> None:
                if journeys is not None and jid is not None:
                    journeys.stage_to(jid, "storage.persist", self.sim.now_ps)
                self._finish(done, journeys, jid, owned, None, state)

            flushed.add_waiter(after_persist)

        attempt()
        return done
