"""Storage stack: block devices, attach points, pmem/slram drivers, write cache."""

from .block import DEFAULT_IO_BYTES, SECTOR_BYTES, BlockDevice, IoFaultModel
from .hdd import HardDiskDrive, HddGeometry
from .pcie import (
    FLASH_X4_PCIE,
    MRAM_PCIE,
    NVRAM_PCIE,
    PcieAttachedStore,
    PcieCardProfile,
)
from .pmem import PmemBlockDevice, PmemConfig, PmemRegion
from .slram import SlramDevice
from .ssd import SolidStateDrive, SsdProfile
from .writecache import DirectStore, NvWriteCache, WriteCacheConfig

__all__ = [
    "BlockDevice",
    "DEFAULT_IO_BYTES",
    "DirectStore",
    "FLASH_X4_PCIE",
    "HardDiskDrive",
    "HddGeometry",
    "IoFaultModel",
    "MRAM_PCIE",
    "NVRAM_PCIE",
    "NvWriteCache",
    "PcieAttachedStore",
    "PcieCardProfile",
    "PmemBlockDevice",
    "PmemConfig",
    "PmemRegion",
    "SECTOR_BYTES",
    "SlramDevice",
    "SolidStateDrive",
    "SsdProfile",
    "WriteCacheConfig",
]
