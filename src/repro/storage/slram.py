"""Raw slram-style block driver over a memory region.

The slram driver exposes a memory region as a simple RAM-disk block device
— no persistence machinery, no flush: the raw access path the paper's
experiments used alongside pmem.io.  Useful as the no-sync comparison
point and for driving volatile regions.
"""

from __future__ import annotations

from ..errors import StorageError
from ..processor.power8 import Power8Socket
from ..sim import Signal, Simulator
from ..units import CACHE_LINE_BYTES, ns_to_ps
from .pmem import PmemConfig


class SlramDevice:
    """Block-style access to any mapped memory region (volatile or not)."""

    def __init__(
        self,
        sim: Simulator,
        socket: Power8Socket,
        base: int,
        size: int,
        config: PmemConfig = PmemConfig(),
        name: str = "slram0",
    ):
        region = socket.memory_map.region_at(base)
        if base + size > region.base + region.os_size:
            raise StorageError(f"{name}: window exceeds region")
        self.sim = sim
        self.socket = socket
        self.base = base
        self.capacity_bytes = size
        self.config = config
        self.name = name
        self.reads = 0
        self.writes = 0

    def _line_addrs(self, offset: int, nbytes: int):
        if offset % CACHE_LINE_BYTES or nbytes % CACHE_LINE_BYTES:
            raise StorageError(f"{self.name}: slram IO must be line-aligned")
        if offset < 0 or offset + nbytes > self.capacity_bytes:
            raise StorageError(f"{self.name}: IO outside device")
        start = self.base + offset
        return [start + i for i in range(0, nbytes, CACHE_LINE_BYTES)]

    def submit_read(self, offset: int, nbytes: int) -> Signal:
        done = Signal(f"{self.name}.r")
        self.reads += 1
        self._pipeline(
            self._line_addrs(offset, nbytes),
            lambda addr: self.socket.read_line(addr),
            self.config.read_window,
            done,
        )
        return done

    def submit_write(self, offset: int, nbytes: int) -> Signal:
        done = Signal(f"{self.name}.w")
        self.writes += 1
        self._pipeline(
            self._line_addrs(offset, nbytes),
            lambda addr: self.socket.write_line(addr, bytes(CACHE_LINE_BYTES)),
            self.config.write_window,
            done,
        )
        return done

    def _pipeline(self, addrs, issue, window, done: Signal) -> None:
        """Issue line ops with bounded outstanding; trigger when all land."""
        state = {"next": 0, "inflight": 0}

        def pump():
            while state["inflight"] < window and state["next"] < len(addrs):
                addr = addrs[state["next"]]
                state["next"] += 1
                state["inflight"] += 1
                issue(addr).add_waiter(retire)

        def retire(_):
            state["inflight"] -= 1
            if state["next"] >= len(addrs) and state["inflight"] == 0:
                done.trigger(None)
            else:
                pump()

        self.sim.call_after(self.config.driver_overhead_ps, pump)
