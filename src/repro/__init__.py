"""ConTutto reproduction: an FPGA memory-buffer prototyping platform for a
POWER8-class server, rebuilt as a discrete-event simulated software twin.

The paper (Sukhwani et al., MICRO-50 2017) plugs an FPGA card into the DMI
memory channel of a POWER8 server in place of the Centaur buffer ASIC, then
uses it to (1) vary latency to memory under real applications, (2) attach
STT-MRAM and NVDIMM-N to the memory bus, and (3) accelerate kernels next to
memory.  This package implements the whole platform in Python — the DMI
protocol with CRC/replay/training, both buffer designs, the memory devices,
the firmware boot path, the storage stack, and the accelerators — and
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import CardSpec, ContuttoSystem
    from repro.units import GIB

    system = ContuttoSystem.build([
        CardSpec(slot=0, kind="contutto", capacity_per_dimm=4 * GIB),
    ])
    print(system.measure_latency_ns("contutto"), "ns")

See ``examples/`` and ``benchmarks/`` for the paper's experiments.
"""

from .campaign import CampaignJob, CampaignRunner, ResultCache, ScenarioMatrix
from .faults import FaultController, FaultPlan, FaultSpec, ResilienceReport
from .faults.experiments import run_ber_sweep, run_nvdimm_drill
from .core import (
    CardSpec,
    ContuttoSystem,
    ResultTable,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fio_matrix,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)

__version__ = "1.0.0"

__all__ = [
    "CampaignJob",
    "CampaignRunner",
    "CardSpec",
    "ContuttoSystem",
    "FaultController",
    "FaultPlan",
    "FaultSpec",
    "ResilienceReport",
    "ResultCache",
    "ResultTable",
    "ScenarioMatrix",
    "__version__",
    "run_ber_sweep",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fio_matrix",
    "run_nvdimm_drill",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
