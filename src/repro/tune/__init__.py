"""Memory-config autotuner: budgeted search over the campaign engine.

A declarative :class:`TuneSpec` (JSON, schema ``repro.tune/v1``) names a
search space over the memory subsystem's tunable knobs — Table-2-style
buffer latency settings, DDR timing parameters, write-cache geometry,
DMI tag/replay depths — one or more objectives, and a budget.  A
searcher (exhaustive grid or successive halving) proposes rung batches
that the :class:`TuneDriver` evaluates as hidden ``tune_trial`` campaign
jobs, so every trial gets deterministic seeding, process-pool
parallelism, retry/timeout, and content-addressed caching for free.
Results land as ``pareto.jsonl`` + ``tune_report.csv`` artifacts whose
bytes are independent of worker count.

    from repro.tune import TuneDriver, TuneSpec

    spec = TuneSpec.from_json(open("tunespecs/example.json").read())
    report = TuneDriver(spec, seed=42, workers=4).run()
    print(report.render())

See ``docs/tuning.md`` for the spec format, the knob catalogue, and the
artifact schemas; ``scripts/run_tune.py`` is the CLI.
"""

from .pareto import (
    common_rung_objectives,
    dominates,
    front_keys,
    mark_dominated,
    pareto_records,
    select_winner,
    write_pareto,
    write_report_csv,
)
from .search import (
    BatchEntry,
    GridSearcher,
    SuccessiveHalvingSearcher,
    TrialState,
    make_searcher,
)
from .space import (
    KNOBS,
    OBJECTIVE_METRICS,
    TUNE_SCHEMA,
    TUNE_SCHEMA_VERSION,
    WORKLOADS,
    Budget,
    Knob,
    Objective,
    TuneSpec,
    canonical_config,
    check_workload_knobs,
    validate_config,
)
from .trial import materialize, objectives_of, run_tune_trial

__all__ = [
    "Budget",
    "BatchEntry",
    "GridSearcher",
    "KNOBS",
    "Knob",
    "OBJECTIVE_METRICS",
    "Objective",
    "SuccessiveHalvingSearcher",
    "TUNE_SCHEMA",
    "TUNE_SCHEMA_VERSION",
    "TrialState",
    "TuneDriver",
    "TuneReport",
    "TuneSpec",
    "WORKLOADS",
    "canonical_config",
    "check_workload_knobs",
    "common_rung_objectives",
    "dominates",
    "front_keys",
    "make_searcher",
    "mark_dominated",
    "materialize",
    "objectives_of",
    "pareto_records",
    "run_tune_trial",
    "select_winner",
    "validate_config",
    "write_pareto",
    "write_report_csv",
]

_LAZY = {"TuneDriver", "TuneReport"}


def __getattr__(name):
    # the driver imports the campaign engine, whose registry imports
    # this package for the tune_trial experiment — loading it lazily
    # keeps that cycle one-directional at import time
    if name in _LAZY:
        from . import driver

        return getattr(driver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
