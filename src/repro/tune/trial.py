"""One tuning trial: materialize a config, run the workload, measure.

``tune_trial`` is a registered (hidden) campaign experiment, so the
search layer gets seeding, process-pool parallelism, retry/timeout, and
content-addressed caching for free.  Its kwargs are plain strings and
ints — the config rides as its canonical JSON — so a trial's cache key
is exactly ``(config, workload, samples, depth, faults, seed)`` plus the
code fingerprint.

Workloads:

``mem_read`` / ``mem_write``
    ``samples`` random 128 B line operations through the full socket →
    DMI → buffer → DRAM path with ``depth`` kept in flight (memory-level
    parallelism), on a system built from the config's buffer/DDR/DMI
    knobs.
``gpfs_write``
    ``samples`` synchronous GPFS-style 4 KiB writes through an
    :class:`~repro.storage.NvWriteCache` whose geometry comes from the
    config's ``wcache.*`` knobs (NVRAM log in front of a hard disk).
``tier_replay``
    ``samples`` key-value-mix operations replayed against a ConTutto
    card carrying a :class:`~repro.hybrid.TieredMemory` whose split,
    policy, and migration knobs come from the config's ``tier.*`` knobs
    (docs/hybrid.md) — the search trades fast-tier capacity against
    migration traffic.

The trial reports a metric table (one row per objective metric).
Percentiles use the repo-wide nearest-rank convention; ``occupancy`` is
the time-averaged number of outstanding operations (Little's law:
Σ latency / elapsed), which is what the arrival-driven occupancy sampler
observes as ``occupancy.dmi.*.tags_in_flight``.  Seeds are
prefix-stable: a rung-promoted re-run with more samples extends the same
address stream, it does not reshuffle it.
"""

from __future__ import annotations

import json
import math
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..buffer.config import DEFAULT
from ..core.results import ResultTable
from ..core.system import CardSpec, ContuttoSystem
from ..errors import ConfigurationError
from ..faults import FaultController, FaultPlan
from ..hybrid import TieredConfig, TieringSpec
from ..memory import DDR3_1066, DDR3_1333, DDR3_1600
from ..processor import SocketConfig
from ..sim import Rng, Signal, Simulator
from ..sim.rng import derive_seed
from ..storage import (
    NVRAM_PCIE,
    HardDiskDrive,
    NvWriteCache,
    PcieAttachedStore,
    WriteCacheConfig,
)
from ..units import CACHE_LINE_BYTES, GIB, MIB
from ..workloads import GpfsJob, GpfsWriter
from ..workloads.replay import generate, replay
from ..workloads.trace import TraceSpec
from .space import check_workload_knobs, validate_config

#: columns of the trial result table
TRIAL_COLUMNS = ["metric", "value"]

#: per-trial sim deadline — generous against any fault window
_OP_TIMEOUT_PS = 10**14

#: DIMM capacity for trial systems (offsets are random; small is fast)
_DIMM_BYTES = 256 * MIB

#: NVRAM log capacity for the gpfs_write workload
_LOG_BYTES = 256 * MIB

#: per-write size for the gpfs_write workload — large relative to small
#: segment geometries so destage pressure shows up within a trial budget
_WRITE_BYTES = 512 * 1024

#: tier_replay geometry: small tiered DIMMs, a replay span that starts
#: cold in the slow tier, and a short epoch so decay/budget refill are
#: exercised within a trial budget (mirrors the tiered_replay experiment)
_TIER_DIMM_BYTES = 64 * MIB
_TIER_SPAN_BYTES = 256 * 1024
_TIER_EPOCH_PS = 50_000_000

_DDR_GRADES = {
    "ddr3_1066": DDR3_1066,
    "ddr3_1333": DDR3_1333,
    "ddr3_1600": DDR3_1600,
}


# -- config materialization --------------------------------------------------


def materialize(config: Dict[str, object]) -> Tuple[CardSpec, SocketConfig]:
    """Turn a validated config into a card spec and socket config.

    A config with any ``fpga.*`` knob drives a ConTutto card; otherwise a
    Centaur whose settings start from the shipping ``DEFAULT`` and apply
    the config's overrides — so an empty config *is* the seed default.
    """
    kind = "contutto" if any(k.startswith("fpga.") for k in config) else "centaur"

    timing = _DDR_GRADES[config.get("ddr.grade", "ddr3_1333")]
    overrides = {
        short: config[f"ddr.{short}"]
        for short in ("cl_cycles", "trcd_cycles", "trp_cycles")
        if f"ddr.{short}" in config
    }
    if overrides:
        timing = replace(timing, **overrides)
    ddr_timing = timing if any(k.startswith("ddr.") for k in config) else None

    centaur = DEFAULT
    centaur_overrides = {}
    if "centaur.extra_delay_ns" in config:
        centaur_overrides["extra_delay_ps"] = int(
            round(float(config["centaur.extra_delay_ns"]) * 1_000)
        )
    if "centaur.cache_enabled" in config:
        centaur_overrides["cache_enabled"] = config["centaur.cache_enabled"]
    if "centaur.prefetch_enabled" in config:
        centaur_overrides["prefetch_enabled"] = config["centaur.prefetch_enabled"]
    if centaur_overrides:
        centaur = replace(centaur, name="tuned", **centaur_overrides)

    spec = CardSpec(
        slot=0,
        kind=kind,
        memory="dram",
        capacity_per_dimm=_DIMM_BYTES,
        centaur_config=centaur,
        knob_position=int(config.get("fpga.knob_position", 0)),
        ddr_timing=ddr_timing,
    )
    socket_kwargs = {}
    if "dmi.num_tags" in config:
        socket_kwargs["num_tags"] = int(config["dmi.num_tags"])
    if "dmi.replay_depth" in config:
        socket_kwargs["replay_depth"] = int(config["dmi.replay_depth"])
    return spec, SocketConfig(**socket_kwargs)


# -- measurement -------------------------------------------------------------


def _percentile_ps(ordered: List[int], pct: float) -> int:
    """Nearest-rank percentile over a pre-sorted sample list."""
    return ordered[max(0, math.ceil(pct / 100 * len(ordered)) - 1)]


def _metric_rows(
    latencies_ps: List[int], elapsed_ps: int, errors: int
) -> List[Tuple[str, float]]:
    ordered = sorted(latencies_ps)
    samples = len(ordered)
    elapsed_s = elapsed_ps * 1e-12
    throughput = samples / elapsed_s if elapsed_s > 0 else 0.0
    occupancy = sum(ordered) / elapsed_ps if elapsed_ps > 0 else 0.0
    return [
        ("p99_ns", _percentile_ps(ordered, 99) / 1_000),
        ("p50_ns", _percentile_ps(ordered, 50) / 1_000),
        ("mean_ns", sum(ordered) / samples / 1_000),
        ("max_ns", ordered[-1] / 1_000),
        ("throughput_ops_s", throughput),
        ("occupancy", occupancy),
        ("throughput_per_occupancy", throughput / occupancy if occupancy else 0.0),
        ("samples", float(samples)),
        ("errors", float(errors)),
    ]


def _measure_lines(
    system: ContuttoSystem, op: str, samples: int, depth: int, seed: int
) -> Tuple[List[int], int, int]:
    """Pipelined line operations: ``depth`` kept in flight until done."""
    region = system.region_for_slot(0)
    sim = system.sim
    socket = system.socket
    rng = Rng(derive_seed(seed, "ops"), "tune.ops")
    lines = region.os_size // CACHE_LINE_BYTES
    addrs = [
        region.base + rng.randint(0, lines - 1) * CACHE_LINE_BYTES
        for _ in range(samples)
    ]
    payload = bytes(CACHE_LINE_BYTES)
    latencies = [0] * samples
    state = {"next": 0, "inflight": 0, "errors": 0}
    done = Signal("tune.done")

    def issue_next() -> None:
        i = state["next"]
        state["next"] += 1
        state["inflight"] += 1
        t0 = sim.now_ps
        if op == "write":
            signal = socket.write_line(addrs[i], payload)
        else:
            signal = socket.read_line(addrs[i])

        def complete(value, i=i, t0=t0) -> None:
            latencies[i] = sim.now_ps - t0
            if isinstance(value, Exception):
                state["errors"] += 1
            state["inflight"] -= 1
            if state["next"] < samples:
                issue_next()
            elif state["inflight"] == 0:
                done.trigger(None)

        signal.add_waiter(complete)

    t_start = sim.now_ps
    for _ in range(min(depth, samples)):
        issue_next()
    sim.run_until_signal(done, timeout_ps=_OP_TIMEOUT_PS)
    return latencies, sim.now_ps - t_start, state["errors"]


def _run_memory_workload(
    config: Dict[str, object],
    op: str,
    samples: int,
    depth: int,
    plan: Optional[FaultPlan],
    seed: int,
) -> List[Tuple[str, float]]:
    spec, socket_config = materialize(config)
    system = ContuttoSystem.build(
        [spec], seed=derive_seed(seed, "system"), socket_config=socket_config
    )
    controller = None
    if plan is not None:
        controller = FaultController(
            system.sim, plan, seed=derive_seed(seed, "faults")
        )
        controller.install(system).start()
    latencies, elapsed, errors = _measure_lines(system, op, samples, depth, seed)
    if controller is not None:
        controller.heal()
        controller.stop()
    return _metric_rows(latencies, elapsed, errors)


def _run_gpfs_workload(
    config: Dict[str, object], samples: int, seed: int
) -> List[Tuple[str, float]]:
    wconfig = WriteCacheConfig(
        segment_bytes=int(config.get("wcache.segment_bytes", 4 * MIB)),
        segments=int(config.get("wcache.segments", 16)),
        destage_threshold=int(config.get("wcache.destage_threshold", 2)),
    )
    if wconfig.segment_bytes * wconfig.segments > _LOG_BYTES:
        raise ConfigurationError(
            f"wcache log {wconfig.segment_bytes}B x {wconfig.segments} "
            f"exceeds the {_LOG_BYTES}B NVRAM device"
        )
    sim = Simulator()
    log = PcieAttachedStore(sim, _LOG_BYTES, NVRAM_PCIE, name="tune.log")
    disk = HardDiskDrive(sim, 4 * GIB)
    cache = NvWriteCache(sim, log, disk, wconfig, name="tune.wcache")
    writer = GpfsWriter(sim)
    latencies: List[int] = []
    errors = 0
    t_start = sim.now_ps
    for i in range(samples):
        job = GpfsJob(
            write_bytes=_WRITE_BYTES,
            total_writes=1,
            seed=derive_seed(seed, f"op{i}"),
        )
        result = writer.run(cache, job)
        latencies.append(int(result.mean_latency_us * 1e6))
        errors += result.errors
    return _metric_rows(latencies, sim.now_ps - t_start, errors)


def _run_tier_workload(
    config: Dict[str, object],
    samples: int,
    depth: int,
    plan: Optional[FaultPlan],
    seed: int,
) -> List[Tuple[str, float]]:
    tiering = TieringSpec(
        fast_fraction=float(config.get("tier.fast_fraction", 0.25)),
        policy=str(config.get("tier.policy", "clock")),
        config=TieredConfig(
            epoch_ps=_TIER_EPOCH_PS,
            promote_threshold=int(config.get("tier.promote_threshold", 4)),
            migrate_budget_bytes=(
                int(config.get("tier.migrate_budget_kib", 32)) * 1024
            ),
        ),
    )
    system = ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", memory="tiered",
                  capacity_per_dimm=_TIER_DIMM_BYTES, tiering=tiering)],
        seed=derive_seed(seed, "system"),
    )
    controller = None
    if plan is not None:
        controller = FaultController(
            system.sim, plan, seed=derive_seed(seed, "faults")
        )
        controller.install(system).start()
    region = system.region_for_slot(0)
    spec = TraceSpec(
        base=region.base,
        size_bytes=min(region.os_size, _TIER_SPAN_BYTES),
        num_accesses=samples,
    )
    ops = generate("kv", spec, derive_seed(seed, "ops"))
    latencies, elapsed, errors = replay(system, ops, depth=depth)
    if controller is not None:
        controller.heal()
        controller.stop()
    return _metric_rows(latencies, elapsed, errors)


# -- the campaign experiment -------------------------------------------------


def run_tune_trial(
    config: str = "{}",
    workload: str = "mem_read",
    samples: int = 32,
    depth: int = 4,
    faults: Optional[str] = None,
    seed: int = 0,
) -> ResultTable:
    """Campaign experiment: measure one tuned config against one workload.

    ``config`` is the canonical knob JSON (part of the cache identity);
    ``faults`` an optional canonical fault-plan JSON installed on the
    built system for the run (system-building workloads only — like the
    service classes, the bare-simulator gpfs_write path has no system to
    inject into).
    """
    try:
        knobs = validate_config(json.loads(config))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"trial config is not valid JSON: {exc}")
    if samples < 2:
        raise ConfigurationError(f"trial needs >= 2 samples, got {samples}")
    if depth < 1:
        raise ConfigurationError(f"trial depth must be >= 1, got {depth}")
    check_workload_knobs(workload, knobs)
    plan = FaultPlan.from_json(faults) if faults else None

    if workload in ("mem_read", "mem_write"):
        rows = _run_memory_workload(
            knobs, "write" if workload == "mem_write" else "read",
            samples, depth, plan, seed,
        )
    elif workload == "gpfs_write":
        rows = _run_gpfs_workload(knobs, samples, seed)
    elif workload == "tier_replay":
        rows = _run_tier_workload(knobs, samples, depth, plan, seed)
    else:
        raise ConfigurationError(f"unknown trial workload {workload!r}")

    table = ResultTable(f"tune trial: {workload}", list(TRIAL_COLUMNS))
    for metric, value in rows:
        table.add_row(metric, value)
    table.add_note(f"config: {config}; depth={depth}; seed={seed}")
    return table


def objectives_of(table: ResultTable) -> Dict[str, float]:
    """The metric→value mapping of a trial result table."""
    return {row[0]: float(row[1]) for row in table.rows}
