"""Declarative tuning specs: knobs, search space, objectives, budget.

A :class:`TuneSpec` (JSON, schema ``repro.tune/v1``) names everything a
tuning run needs:

* a **search space** — lists of candidate values for registered *knobs*,
  each a validated, serializable path into the built system: Table-2-style
  buffer latency settings, the ConTutto latency knob, DDR timing
  parameters, DMI tag/replay depths, and write-cache geometry;
* one or more **objectives** — metrics of the trial result
  (:mod:`repro.tune.trial`) with a ``min``/``max`` goal; the first
  objective is *primary* (it drives successive-halving promotion), the
  full vector decides Pareto dominance;
* a **budget** — samples per trial at rung 0, the rung count, and the
  halving factor ``eta`` (survivors per rung shrink by ``eta`` while
  samples grow by it).

Knob values are validated *before* any simulation runs — an out-of-range
value raises :class:`~repro.errors.ConfigurationError` at spec load, not
three rungs into a campaign.  Configs serialize canonically (sorted keys,
no whitespace) so a config string is a stable identity for seeding,
caching, and artifact ordering.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dmi.frames import SEQ_MOD
from ..errors import ConfigurationError
from ..fpga.latency_knob import MAX_POSITION

TUNE_SCHEMA = "repro.tune/v1"
TUNE_SCHEMA_VERSION = 1

#: workloads a trial can run (see repro.tune.trial)
WORKLOADS = ("mem_read", "mem_write", "gpfs_write", "tier_replay")

#: metrics a trial reports; any of them can be an objective
OBJECTIVE_METRICS = (
    "p99_ns",
    "p50_ns",
    "mean_ns",
    "max_ns",
    "throughput_ops_s",
    "occupancy",
    "throughput_per_occupancy",
)

#: DDR timing grades a config may select
DDR_GRADES = ("ddr3_1066", "ddr3_1333", "ddr3_1600")


@dataclass(frozen=True)
class Knob:
    """One tunable axis: name, type, and the legal value range."""

    name: str
    kind: str                             # "int" | "float" | "bool" | "choice"
    lo: Optional[float] = None
    hi: Optional[float] = None
    choices: Tuple[str, ...] = ()
    doc: str = ""

    def validate(self, value):
        """Normalize ``value`` or raise :class:`ConfigurationError`."""
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"knob {self.name}: expected true/false, got {value!r}"
                )
            return value
        if self.kind == "choice":
            if value not in self.choices:
                raise ConfigurationError(
                    f"knob {self.name}: {value!r} not one of "
                    f"{', '.join(self.choices)}"
                )
            return value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"knob {self.name}: expected a number, got {value!r}"
            )
        if self.kind == "int":
            if int(value) != value:
                raise ConfigurationError(
                    f"knob {self.name}: expected an integer, got {value!r}"
                )
            value = int(value)
        else:
            value = float(value)
        if not self.lo <= value <= self.hi:
            raise ConfigurationError(
                f"knob {self.name}: {value} outside [{self.lo}, {self.hi}]"
            )
        return value


#: every knob a search space may name, with its validated range
KNOBS: Dict[str, Knob] = {
    knob.name: knob
    for knob in (
        # Centaur buffer settings (the Table 2 axis)
        Knob("centaur.extra_delay_ns", "float", 0, 1_000,
             doc="command pacing added by the buffer setting"),
        Knob("centaur.cache_enabled", "bool",
             doc="16 MB eDRAM cache on/off"),
        Knob("centaur.prefetch_enabled", "bool",
             doc="next-line prefetch into the eDRAM cache"),
        # ConTutto latency knob (the Table 3 axis, fpga/latency_knob.py)
        Knob("fpga.knob_position", "int", 0, MAX_POSITION,
             doc="delay modules between MBS and the Avalon bus"),
        # DDR timing
        Knob("ddr.grade", "choice", choices=DDR_GRADES,
             doc="DIMM timing grade preset"),
        Knob("ddr.cl_cycles", "int", 4, 20, doc="CAS latency override"),
        Knob("ddr.trcd_cycles", "int", 4, 20, doc="activate delay override"),
        Knob("ddr.trp_cycles", "int", 4, 20, doc="precharge delay override"),
        # DMI channel depths
        Knob("dmi.num_tags", "int", 1, 64,
             doc="host command-tag window (hardware: 32)"),
        Knob("dmi.replay_depth", "int", 1, SEQ_MOD - 1,
             doc="unacknowledged frames in flight per endpoint"),
        # write-cache geometry (gpfs_write workload)
        Knob("wcache.segment_bytes", "int", 64 << 10, 64 << 20,
             doc="log segment size: one destage IO"),
        Knob("wcache.segments", "int", 2, 256,
             doc="segments in the NVM log"),
        Knob("wcache.destage_threshold", "int", 1, 64,
             doc="full segments that trigger destaging"),
        # hybrid-memory tiering (tier_replay workload, docs/hybrid.md)
        Knob("tier.fast_fraction", "float", 0.05, 0.75,
             doc="share of a tiered card's capacity in the DRAM tier"),
        Knob("tier.policy", "choice", choices=("static", "clock", "budget"),
             doc="page-migration policy"),
        Knob("tier.promote_threshold", "int", 1, 64,
             doc="epoch-decayed accesses that make a slow page hot"),
        Knob("tier.migrate_budget_kib", "int", 4, 65536,
             doc="migration-traffic allowance per epoch (budget policy)"),
    )
}


def validate_config(config: Dict[str, object]) -> Dict[str, object]:
    """Validate a knob→value mapping; returns the normalized config.

    Rejects unknown knobs, out-of-range values, and configs that mix
    Centaur settings with the ConTutto knob (one buffer kind per trial).
    """
    if not isinstance(config, dict):
        raise ConfigurationError(f"config must be an object, got {config!r}")
    out: Dict[str, object] = {}
    for name in sorted(config):
        knob = KNOBS.get(name)
        if knob is None:
            raise ConfigurationError(
                f"unknown knob {name!r} (known: {', '.join(sorted(KNOBS))})"
            )
        out[name] = knob.validate(config[name])
    if any(k.startswith("centaur.") for k in out) and any(
        k.startswith("fpga.") for k in out
    ):
        raise ConfigurationError(
            "a config drives one buffer kind: centaur.* and fpga.* knobs "
            "are mutually exclusive"
        )
    return out


def canonical_config(config: Dict[str, object]) -> str:
    """The canonical JSON identity of a validated config."""
    return json.dumps(
        validate_config(config), sort_keys=True, separators=(",", ":")
    )


def check_workload_knobs(workload: str, names) -> None:
    """Reject knobs the workload cannot exercise.

    The write-cache workload never touches the memory path and vice
    versa, so a mismatched knob would silently tune nothing — fail fast
    instead.
    """
    wcache = sorted(n for n in names if n.startswith("wcache."))
    tier = sorted(n for n in names if n.startswith("tier."))
    other = sorted(
        n for n in names
        if not n.startswith("wcache.") and not n.startswith("tier.")
    )
    if workload == "gpfs_write":
        if other or tier:
            raise ConfigurationError(
                f"workload gpfs_write only exercises wcache.* knobs; "
                f"{', '.join(other + tier)} would have no effect"
            )
        return
    if workload == "tier_replay":
        if other or wcache:
            raise ConfigurationError(
                f"workload tier_replay only exercises tier.* knobs; "
                f"{', '.join(other + wcache)} would have no effect"
            )
        return
    if wcache or tier:
        raise ConfigurationError(
            f"workload {workload} does not touch the write cache or the "
            f"tiered device; {', '.join(wcache + tier)} would have no effect"
        )


@dataclass(frozen=True)
class Objective:
    """One optimization target: a trial metric and a direction."""

    metric: str
    goal: str = "min"

    def __post_init__(self) -> None:
        if self.metric not in OBJECTIVE_METRICS:
            raise ConfigurationError(
                f"unknown objective metric {self.metric!r} "
                f"(known: {', '.join(OBJECTIVE_METRICS)})"
            )
        if self.goal not in ("min", "max"):
            raise ConfigurationError(
                f"objective {self.metric}: goal must be 'min' or 'max', "
                f"got {self.goal!r}"
            )

    def key(self, value: float) -> float:
        """A sort key where smaller is always better."""
        return -value if self.goal == "max" else value


@dataclass(frozen=True)
class Budget:
    """Trial budget: samples per rung and the halving geometry."""

    base_samples: int = 8
    rungs: int = 1
    eta: int = 2

    def __post_init__(self) -> None:
        if self.base_samples < 2:
            raise ConfigurationError(
                f"budget base_samples must be >= 2, got {self.base_samples}"
            )
        if self.rungs < 1:
            raise ConfigurationError(f"budget rungs must be >= 1, got {self.rungs}")
        if self.eta < 2:
            raise ConfigurationError(f"budget eta must be >= 2, got {self.eta}")

    def samples_at(self, rung: int) -> int:
        """Per-trial samples at a rung (grows by ``eta`` per promotion)."""
        return self.base_samples * self.eta**rung


@dataclass(frozen=True)
class TuneSpec:
    """A complete, validated tuning request."""

    name: str
    workload: str
    space: Tuple[Tuple[str, Tuple[object, ...]], ...]
    objectives: Tuple[Objective, ...]
    searcher: str = "halving"
    budget: Budget = Budget()
    depth: int = 4
    baseline: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("-", "").replace(
            "_", ""
        ).isalnum():
            raise ConfigurationError(
                f"spec name must be a non-empty slug, got {self.name!r}"
            )
        if self.workload not in WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r} "
                f"(known: {', '.join(WORKLOADS)})"
            )
        if self.searcher not in ("grid", "halving"):
            raise ConfigurationError(
                f"searcher must be 'grid' or 'halving', got {self.searcher!r}"
            )
        if not self.objectives:
            raise ConfigurationError("spec needs at least one objective")
        metrics = [o.metric for o in self.objectives]
        if len(set(metrics)) != len(metrics):
            raise ConfigurationError("objective metrics must be unique")
        if not self.space:
            raise ConfigurationError("spec needs a non-empty search space")
        if self.depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {self.depth}")
        for name, values in self.space:
            knob = KNOBS.get(name)
            if knob is None:
                raise ConfigurationError(
                    f"unknown knob {name!r} in search space "
                    f"(known: {', '.join(sorted(KNOBS))})"
                )
            if not values:
                raise ConfigurationError(f"knob {name}: empty candidate list")
            for value in values:
                knob.validate(value)
        validate_config(dict(self.baseline))
        check_workload_knobs(
            self.workload,
            [name for name, _ in self.space]
            + [name for name, _ in self.baseline],
        )
        for config in self.grid():
            validate_config(config)

    # -- enumeration --------------------------------------------------------

    def grid(self) -> List[Dict[str, object]]:
        """Every config in the space's cross product, in canonical order."""
        ordered = sorted(self.space)
        names = [name for name, _ in ordered]
        out = []
        for combo in itertools.product(*(values for _, values in ordered)):
            out.append(dict(zip(names, combo)))
        return out

    def baseline_config(self) -> Dict[str, object]:
        return dict(self.baseline)

    # -- serialization ------------------------------------------------------

    @classmethod
    def from_dict(cls, raw: dict) -> "TuneSpec":
        if not isinstance(raw, dict):
            raise ConfigurationError("tune spec must be a JSON object")
        schema = raw.get("schema", TUNE_SCHEMA)
        if schema != TUNE_SCHEMA:
            raise ConfigurationError(
                f"unsupported tune schema {schema!r} (expected {TUNE_SCHEMA})"
            )
        unknown = set(raw) - {
            "schema", "name", "workload", "space", "objectives",
            "searcher", "budget", "depth", "baseline",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown tune spec fields: {', '.join(sorted(unknown))}"
            )
        space = raw.get("space", {})
        if not isinstance(space, dict):
            raise ConfigurationError("space must be an object of value lists")
        objectives = raw.get("objectives", [])
        if not isinstance(objectives, list):
            raise ConfigurationError("objectives must be a list")
        parsed_objectives = []
        for entry in objectives:
            if isinstance(entry, str):
                # "p99_ns" or "min:p99_ns" / "max:throughput_ops_s"
                goal, _, metric = entry.rpartition(":")
                entry = {"metric": metric} if not goal else {
                    "metric": metric, "goal": goal,
                }
            if not isinstance(entry, dict):
                raise ConfigurationError(f"bad objective entry {entry!r}")
            parsed_objectives.append(
                Objective(
                    str(entry.get("metric", "")),
                    str(entry.get("goal", "min")),
                )
            )
        budget_raw = raw.get("budget", {})
        if not isinstance(budget_raw, dict):
            raise ConfigurationError("budget must be an object")
        budget = Budget(
            base_samples=int(budget_raw.get("base_samples", 8)),
            rungs=int(budget_raw.get("rungs", 1)),
            eta=int(budget_raw.get("eta", 2)),
        )
        baseline = raw.get("baseline", {})
        if not isinstance(baseline, dict):
            raise ConfigurationError("baseline must be a config object")
        return cls(
            name=str(raw.get("name", "")),
            workload=str(raw.get("workload", "mem_read")),
            space=tuple(
                (str(k), tuple(v) if isinstance(v, list) else (v,))
                for k, v in sorted(space.items())
            ),
            objectives=tuple(parsed_objectives),
            searcher=str(raw.get("searcher", "halving")),
            budget=budget,
            depth=int(raw.get("depth", 4)),
            baseline=tuple(sorted(baseline.items())),
        )

    @classmethod
    def from_json(cls, text: str) -> "TuneSpec":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"tune spec is not valid JSON: {exc}")
        return cls.from_dict(raw)

    def to_dict(self) -> dict:
        return {
            "schema": TUNE_SCHEMA,
            "name": self.name,
            "workload": self.workload,
            "space": {name: list(values) for name, values in self.space},
            "objectives": [
                {"metric": o.metric, "goal": o.goal} for o in self.objectives
            ],
            "searcher": self.searcher,
            "budget": {
                "base_samples": self.budget.base_samples,
                "rungs": self.budget.rungs,
                "eta": self.budget.eta,
            },
            "depth": self.depth,
            "baseline": dict(self.baseline),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
