"""Pareto dominance and the first-class tuning artifacts.

The non-dominated front is computed over every successfully evaluated
trial's final objective vector and published two ways:

* ``pareto.jsonl`` — a ``repro.tune/v1`` record stream: one ``meta``
  record (spec identity, objectives, budget, front size) then one
  ``trial`` record per config (config, objective vector, dominated
  flag, rung history), sorted by canonical config key;
* ``tune_report.csv`` — the same grid flattened for spreadsheets: one
  column per knob in the space, one per objective metric, plus rung /
  samples / status / dominated.

Nothing in either artifact depends on worker count, scheduling order,
cache state, or wall-clock time, so a re-run of the same spec at any
``--jobs`` reproduces both byte for byte.

Dominance convention: ``a`` dominates ``b`` iff ``a`` is no worse on
every objective (respecting each ``min``/``max`` goal) and strictly
better on at least one.  Equal vectors therefore do not dominate each
other — tied configs are all on the front.  With a single objective the
front degenerates to the set of configs tied at the optimum.

Halving evaluates survivors at growing sample budgets, and tail metrics
are budget-dependent (a p99 over 144 samples probes a deeper tail than
one over 16), so vectors from different rungs must not be compared
directly.  Dominance between two trials is therefore judged at the
**deepest rung both were measured at** — every trial's rung history is
retained for exactly this.  Trials run under common random numbers, so
a same-rung comparison is paired: the difference is the config's doing,
not the draw's.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, List, Optional, Sequence, Tuple

from .search import TrialState
from .space import TUNE_SCHEMA, TUNE_SCHEMA_VERSION, Objective, TuneSpec


def dominates(
    a: Dict[str, float], b: Dict[str, float], objectives: Sequence[Objective]
) -> bool:
    """Whether objective vector ``a`` Pareto-dominates ``b``."""
    better = False
    for objective in objectives:
        av = objective.key(a[objective.metric])
        bv = objective.key(b[objective.metric])
        if av > bv:
            return False
        if av < bv:
            better = True
    return better


def common_rung_objectives(
    a: TrialState, b: TrialState
) -> Optional[Tuple[Dict[str, float], Dict[str, float]]]:
    """Both trials' vectors at the deepest rung both were measured at."""
    hist_a = {h["rung"]: h["objectives"] for h in a.history}
    hist_b = {h["rung"]: h["objectives"] for h in b.history}
    common = set(hist_a) & set(hist_b)
    if not common:
        return None
    rung = max(common)
    return hist_a[rung], hist_b[rung]


def mark_dominated(
    trials: Sequence[TrialState], objectives: Sequence[Objective]
) -> Dict[str, bool]:
    """``key -> dominated`` for every ok trial (failed trials excluded).

    Each pair is compared at its deepest common rung (see the module
    docstring); a trial is dominated if any other trial beats it there.
    """
    ok = [t for t in trials if t.status == "ok" and t.objectives]
    flags: Dict[str, bool] = {}
    for trial in ok:
        dominated = False
        for other in ok:
            if other.key == trial.key:
                continue
            pair = common_rung_objectives(other, trial)
            if pair is not None and dominates(pair[0], pair[1], objectives):
                dominated = True
                break
        flags[trial.key] = dominated
    return flags


def front_keys(
    trials: Sequence[TrialState], objectives: Sequence[Objective]
) -> List[str]:
    """Canonical keys of the non-dominated trials, sorted."""
    flags = mark_dominated(trials, objectives)
    return sorted(k for k, dominated in flags.items() if not dominated)


def select_winner(
    trials: Sequence[TrialState], objectives: Sequence[Objective]
) -> Optional[TrialState]:
    """The best trial: primary objective at the deepest evaluated rung.

    Halving's final survivors carry the largest budget, so the winner is
    chosen among trials at the maximum rung; ties break on the canonical
    key.  ``None`` when every trial failed.
    """
    ok = [t for t in trials if t.status == "ok" and t.objectives]
    if not ok:
        return None
    top_rung = max(t.rung for t in ok)
    primary = objectives[0]
    pool = [t for t in ok if t.rung == top_rung]
    return min(pool, key=lambda t: (primary.key(t.objectives[primary.metric]), t.key))


# -- artifacts ---------------------------------------------------------------


def pareto_records(
    spec: TuneSpec, trials: Sequence[TrialState], seed: int
) -> List[dict]:
    """The ``repro.tune/v1`` record stream for ``pareto.jsonl``."""
    ordered = sorted(trials, key=lambda t: t.key)
    flags = mark_dominated(ordered, spec.objectives)
    winner = select_winner(ordered, spec.objectives)
    records: List[dict] = [
        {
            "schema": TUNE_SCHEMA,
            "schema_version": TUNE_SCHEMA_VERSION,
            "kind": "meta",
            "name": spec.name,
            "workload": spec.workload,
            "searcher": spec.searcher,
            "objectives": [
                {"metric": o.metric, "goal": o.goal} for o in spec.objectives
            ],
            "budget": {
                "base_samples": spec.budget.base_samples,
                "rungs": spec.budget.rungs,
                "eta": spec.budget.eta,
            },
            "depth": spec.depth,
            "seed": seed,
            "trials": len(ordered),
            "front_size": sum(
                1 for k, dominated in flags.items() if not dominated
            ),
            "winner": winner.key if winner is not None else None,
            "baseline": json.dumps(
                spec.baseline_config(), sort_keys=True, separators=(",", ":")
            ),
        }
    ]
    for trial in ordered:
        record = {
            "schema": TUNE_SCHEMA,
            "kind": "trial",
            "key": trial.key,
            "config": dict(sorted(trial.config.items())),
            "status": trial.status,
            "rung": trial.rung,
            "samples": trial.samples,
            "objectives": trial.objectives,
            "dominated": flags.get(trial.key),
            "history": trial.history,
        }
        if trial.error:
            record["error"] = trial.error
        records.append(record)
    return records


def write_pareto(path: str, records: List[dict]) -> int:
    """Write the record stream as JSONL; returns the record count."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def report_rows(
    spec: TuneSpec, trials: Sequence[TrialState]
) -> Tuple[List[str], List[List[object]]]:
    """Header + rows of ``tune_report.csv`` (deterministic order)."""
    knob_names = sorted(
        {name for trial in trials for name in trial.config}
    )
    metrics = [o.metric for o in spec.objectives]
    header = (
        knob_names
        + metrics
        + ["rung", "samples", "status", "dominated"]
    )
    flags = mark_dominated(trials, spec.objectives)
    rows: List[List[object]] = []
    for trial in sorted(trials, key=lambda t: t.key):
        row: List[object] = [
            trial.config.get(name, "") for name in knob_names
        ]
        for metric in metrics:
            row.append(
                trial.objectives.get(metric, "") if trial.objectives else ""
            )
        dominated = flags.get(trial.key)
        row += [
            trial.rung,
            trial.samples,
            trial.status,
            "" if dominated is None else int(dominated),
        ]
        rows.append(row)
    return header, rows


def write_report_csv(
    path: str, spec: TuneSpec, trials: Sequence[TrialState]
) -> int:
    header, rows = report_rows(spec, trials)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return len(rows)
