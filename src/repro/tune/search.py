"""Searchers: deterministic rung-batch proposers over a config population.

A searcher turns a :class:`~repro.tune.space.TuneSpec` into a sequence
of **batches** — lists of ``(config, samples, rung)`` the driver
evaluates through the campaign engine — and folds the observed objective
vectors back in to decide the next batch:

* :class:`GridSearcher` — one rung: every config at the base budget;
* :class:`SuccessiveHalvingSearcher` — rung ``r`` evaluates the
  survivors at ``base_samples * eta**r`` samples, then promotes the top
  ``1/eta`` by the *primary* objective (ties broken by canonical config
  key, so promotion is deterministic at any worker count or completion
  order).  Failed trials never promote.

The searcher never runs anything itself; it is pure bookkeeping, which
is what makes a half-finished run resumable — replaying the same batches
against a warm result cache reconstructs identical state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .space import TuneSpec, canonical_config


@dataclass
class TrialState:
    """Everything observed about one config across its rungs."""

    config: Dict[str, object]
    key: str                                   # canonical config JSON
    rung: int = -1                             # highest evaluated rung
    samples: int = 0                           # samples at that rung
    objectives: Optional[Dict[str, float]] = None
    status: str = "pending"                    # "pending" | "ok" | "failed"
    error: Optional[str] = None
    #: per-rung history: {"rung", "samples", "objectives"}
    history: List[dict] = field(default_factory=list)


@dataclass(frozen=True)
class BatchEntry:
    """One trial the driver should evaluate now."""

    key: str
    config: Dict[str, object]
    samples: int
    rung: int


class _SearcherBase:
    """Shared population bookkeeping."""

    def __init__(self, spec: TuneSpec):
        self.spec = spec
        self.trials: Dict[str, TrialState] = {}
        self._order: List[str] = []
        # the baseline config always joins rung 0, so every report can
        # compare the winner against the seed default configuration
        for config in [spec.baseline_config()] + spec.grid():
            key = canonical_config(config)
            if key not in self.trials:
                self.trials[key] = TrialState(config=dict(config), key=key)
                self._order.append(key)
        self._done = False

    def observe(self, results: Dict[str, Optional[Dict[str, float]]]) -> None:
        """Fold one batch's outcomes in: ``key -> objectives`` (None = failed)."""
        for key, objectives in results.items():
            trial = self.trials.get(key)
            if trial is None:
                raise ConfigurationError(f"observed unknown trial {key!r}")
            if objectives is None:
                trial.status = "failed"
                trial.objectives = None
            else:
                trial.status = "ok"
                trial.objectives = dict(objectives)
                trial.history.append(
                    {
                        "rung": trial.rung,
                        "samples": trial.samples,
                        "objectives": dict(objectives),
                    }
                )

    def _mark_proposed(self, keys: List[str], rung: int) -> List[BatchEntry]:
        samples = self.spec.budget.samples_at(rung)
        batch = []
        for key in keys:
            trial = self.trials[key]
            trial.rung = rung
            trial.samples = samples
            batch.append(BatchEntry(key, dict(trial.config), samples, rung))
        return batch

    def _ranked_ok(self, keys: List[str]) -> List[str]:
        """Surviving keys best-first by the primary objective."""
        primary = self.spec.objectives[0]
        ok = [
            k for k in keys
            if self.trials[k].status == "ok" and self.trials[k].objectives
        ]
        return sorted(
            ok,
            key=lambda k: (primary.key(self.trials[k].objectives[primary.metric]), k),
        )


class GridSearcher(_SearcherBase):
    """Exhaustive: every config once, at the base budget."""

    def next_batch(self) -> Optional[List[BatchEntry]]:
        if self._done:
            return None
        self._done = True
        return self._mark_proposed(list(self._order), rung=0)


class SuccessiveHalvingSearcher(_SearcherBase):
    """Rung-based promotion: survivors shrink by eta, budgets grow by it."""

    def __init__(self, spec: TuneSpec):
        super().__init__(spec)
        self._rung = 0
        self._survivors = list(self._order)

    def next_batch(self) -> Optional[List[BatchEntry]]:
        if self._done:
            return None
        if self._rung > 0:
            ranked = self._ranked_ok(self._survivors)
            if not ranked:
                self._done = True  # everything failed; nothing to promote
                return None
            keep = max(1, math.floor(len(ranked) / self.spec.budget.eta))
            self._survivors = ranked[:keep]
        batch = self._mark_proposed(list(self._survivors), self._rung)
        self._rung += 1
        if self._rung >= self.spec.budget.rungs:
            self._done = True
        return batch


def make_searcher(spec: TuneSpec):
    if spec.searcher == "grid":
        return GridSearcher(spec)
    return SuccessiveHalvingSearcher(spec)
