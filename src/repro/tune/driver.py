"""The tune driver: rung batches through the campaign engine.

Each searcher batch becomes a list of ``tune_trial`` campaign jobs, so a
tuning run inherits the whole campaign contract: process-pool
parallelism, retry/timeout, content-addressed caching, and a JSONL
manifest per rung (``manifest-rung<r>.jsonl``).  Re-running a spec is a
near-total cache hit; killing a run mid-rung and re-running resumes it —
finished trials replay from the cache, only the missing ones execute.

Every trial runs under the *same* seed (common random numbers): configs
at a given rung see the identical operation stream, so tail-latency
comparisons are paired — a difference in p99 is caused by the config,
not by which addresses the trial happened to draw.  The cache still
distinguishes trials because the config rides in the job kwargs.  The
stream is also prefix-stable in ``samples``, so a promoted config's
higher-rung measurement extends its rung-0 run instead of reshuffling
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..campaign import CampaignJob, CampaignRunner, ResultCache
from ..campaign.runner import CampaignReport, JobOutcome
from .pareto import (
    common_rung_objectives,
    front_keys,
    pareto_records,
    select_winner,
    write_pareto,
    write_report_csv,
)
from .search import TrialState, make_searcher
from .space import TuneSpec, canonical_config
from .trial import objectives_of


@dataclass
class TuneReport:
    """The completed search: trial states, front, winner, campaign stats."""

    spec: TuneSpec
    seed: int
    trials: List[TrialState]
    front: List[str]
    winner: Optional[TrialState]
    baseline: Optional[TrialState]
    rung_summaries: List[str]
    campaign: CampaignReport

    @property
    def jobs(self) -> int:
        return len(self.campaign.outcomes)

    @property
    def cache_hits(self) -> int:
        return self.campaign.cache_hits

    @property
    def failed(self) -> List[JobOutcome]:
        return self.campaign.failed

    def matched_comparison(self) -> Optional[Tuple[float, float]]:
        """``(winner, baseline)`` primary values at their deepest common rung.

        A rung-2 p99 over 144 samples probes a deeper tail than a rung-0
        p99 over 16, so the winner-vs-baseline comparison only means
        something at a shared budget.
        """
        if (
            self.winner is None
            or self.baseline is None
            or self.baseline.status != "ok"
        ):
            return None
        pair = common_rung_objectives(self.winner, self.baseline)
        if pair is None:
            return None
        primary = self.spec.objectives[0]
        return pair[0][primary.metric], pair[1][primary.metric]

    def improvement_pct(self) -> Optional[float]:
        """Primary-objective gain of the winner over the baseline config."""
        pair = self.matched_comparison()
        if pair is None:
            return None
        best, base = pair
        if base == 0:
            return None
        primary = self.spec.objectives[0]
        gain = (base - best) / abs(base)
        return 100.0 * (gain if primary.goal == "min" else -gain)

    def render(self) -> str:
        objectives = ", ".join(
            f"{o.metric}({o.goal})" for o in self.spec.objectives
        )
        lines = [
            f"tune {self.spec.name}: {self.spec.searcher} search over "
            f"{len(self.trials)} config(s), workload {self.spec.workload}, "
            f"objectives {objectives}",
        ]
        lines += self.rung_summaries
        metrics = [o.metric for o in self.spec.objectives]
        front_set = set(self.front)
        lines.append(f"Pareto front ({len(self.front)} of {len(self.trials)}):")
        for trial in self.trials:
            if trial.key not in front_set:
                continue
            values = "  ".join(
                f"{m}={trial.objectives[m]:.3f}" for m in metrics
            )
            lines.append(f"  {trial.key}  {values}")
        primary = self.spec.objectives[0]
        if self.winner is not None:
            lines.append(
                f"winner: {self.winner.key}  "
                f"{primary.metric}={self.winner.objectives[primary.metric]:.3f} "
                f"(rung {self.winner.rung}, {self.winner.samples} samples)"
            )
        pair = self.matched_comparison()
        if pair is not None:
            best, base = pair
            gain = self.improvement_pct()
            lines.append(
                f"baseline: {self.baseline.key}  {primary.metric}={base:.3f}"
            )
            if gain is not None:
                lines.append(
                    f"winner vs baseline on {primary.metric} at matched "
                    f"budget: {best:.3f} vs {base:.3f} "
                    f"({gain:+.1f}%, {'better' if gain > 0 else 'not better'})"
                )
        return "\n".join(lines)


class TuneDriver:
    """Drive one spec to completion over the campaign engine."""

    def __init__(
        self,
        spec: TuneSpec,
        seed: int = 0,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        out_dir: Optional[str] = None,
        resume: bool = False,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        faults: Optional[str] = None,
        attribution_mode: str = "summary",
    ):
        self.spec = spec
        self.seed = seed
        self.workers = workers
        self.cache = cache
        self.out_dir = Path(out_dir) if out_dir else None
        self.resume = resume and cache is not None
        self.timeout_s = timeout_s
        self.retries = retries
        self.faults = faults
        self.attribution_mode = attribution_mode

    # -- job construction ---------------------------------------------------

    def _jobs(self, batch) -> List[CampaignJob]:
        jobs = []
        for entry in batch:
            kwargs = {
                "config": entry.key,
                "workload": self.spec.workload,
                "samples": entry.samples,
                "depth": self.spec.depth,
            }
            if self.faults:
                kwargs["faults"] = self.faults
            # every trial shares the search seed: common random numbers
            # make cross-config comparisons paired (see module docstring)
            jobs.append(CampaignJob.make("tune_trial", kwargs, seed=self.seed))
        return jobs

    # -- execution ----------------------------------------------------------

    def run(self) -> TuneReport:
        searcher = make_searcher(self.spec)
        if self.out_dir:
            self.out_dir.mkdir(parents=True, exist_ok=True)
        outcomes: List[JobOutcome] = []
        wall_clock = 0.0
        rung_summaries: List[str] = []
        rung = 0
        while True:
            batch = searcher.next_batch()
            if batch is None:
                break
            jobs = self._jobs(batch)
            manifest = (
                str(self.out_dir / f"manifest-rung{rung}.jsonl")
                if self.out_dir
                else None
            )
            resume = (
                self.resume
                and manifest is not None
                and Path(manifest).exists()
            )
            runner = CampaignRunner(
                jobs,
                workers=self.workers,
                cache=self.cache,
                manifest_path=manifest,
                resume=resume,
                timeout_s=self.timeout_s,
                retries=self.retries,
                base_seed=self.seed,
                attribution_mode=self.attribution_mode,
            )
            report = runner.run()
            results: Dict[str, Optional[Dict[str, float]]] = {}
            for outcome in report.outcomes:
                key = outcome.job.kwargs_dict["config"]
                if outcome.ok:
                    results[key] = objectives_of(outcome.tables()[0])
                else:
                    results[key] = None
                    searcher.trials[key].error = outcome.error
            searcher.observe(results)
            outcomes.extend(report.outcomes)
            wall_clock += report.wall_clock_s
            rung_summaries.append(
                f"rung {rung}: {len(jobs)} trial(s) @ {batch[0].samples} "
                f"samples — {len(report.succeeded)} ok, "
                f"{report.cache_hits} from cache, {len(report.failed)} failed"
            )
            rung += 1

        trials = sorted(searcher.trials.values(), key=lambda t: t.key)
        evaluated = [t for t in trials if t.status != "pending"]
        campaign = CampaignReport(outcomes, wall_clock, self.workers)
        front = front_keys(evaluated, self.spec.objectives)
        winner = select_winner(evaluated, self.spec.objectives)
        baseline = searcher.trials.get(
            canonical_config(self.spec.baseline_config())
        )
        if self.out_dir:
            write_pareto(
                str(self.out_dir / "pareto.jsonl"),
                pareto_records(self.spec, evaluated, self.seed),
            )
            write_report_csv(
                str(self.out_dir / "tune_report.csv"), self.spec, evaluated
            )
            campaign.write_telemetry(
                str(self.out_dir / "metrics.jsonl"),
                params={
                    "spec": self.spec.name,
                    "workload": self.spec.workload,
                    "searcher": self.spec.searcher,
                    "seed": self.seed,
                },
            )
            campaign.write_attribution(
                str(self.out_dir / "attribution.jsonl"),
                name=f"tune:{self.spec.name}",
            )
        return TuneReport(
            spec=self.spec,
            seed=self.seed,
            trials=evaluated,
            front=front,
            winner=winner,
            baseline=baseline,
            rung_summaries=rung_summaries,
            campaign=campaign,
        )
