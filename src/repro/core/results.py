"""Result tables: the uniform output format of the experiment harness.

Every experiment returns a :class:`ResultTable`; benchmarks print them so
regenerating a paper table is ``print(run_table3().format())``.

Tables are plain data: cells are coerced to native Python scalars at
:meth:`~ResultTable.add_row` time (numpy scalars become ``int``/``float``),
so every table pickles cheaply across process boundaries — the campaign
runner (`repro.campaign`) ships them between workers and caches them on
disk — and two tables from identically-seeded runs compare equal with
``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


def _plain_cell(value: Any) -> Any:
    """Coerce numpy (or other ``.item()``-bearing) scalars to native Python."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            coerced = item()
        except (TypeError, ValueError):
            return value
        if isinstance(coerced, (bool, int, float, str)):
            return coerced
    return value


@dataclass
class ResultTable:
    """A titled grid of results with optional paper-value columns."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([_plain_cell(v) for v in values])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @classmethod
    def from_record(cls, record: dict) -> "ResultTable":
        """Rebuild a table from a ``repro.telemetry/v1`` ``result`` record
        (the inverse of :func:`repro.telemetry.result_record`)."""
        return cls(
            record["title"],
            list(record["columns"]),
            [list(row) for row in record["rows"]],
            list(record.get("notes", [])),
        )

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row_by(self, key_column: str, key: Any) -> List[Any]:
        index = self.columns.index(key_column)
        for row in self.rows:
            if row[index] == key:
                return row
        raise KeyError(f"{self.title}: no row with {key_column}={key!r}")

    def cell(self, key_column: str, key: Any, value_column: str) -> Any:
        return self.row_by(key_column, key)[self.columns.index(value_column)]

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    def format(self) -> str:
        """ASCII rendering with aligned columns."""
        cells = [self.columns] + [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.columns))]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(self._fmt(v) for v in row) + " |")
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)
