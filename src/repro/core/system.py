"""The top-level system builder: the library's primary public API.

:class:`ContuttoSystem` assembles a complete simulated POWER8 server —
socket, buffers (Centaur and/or ConTutto), memory devices, firmware — and
boots it through the real IPL flow.  Example::

    from repro import ContuttoSystem, CardSpec

    system = ContuttoSystem.build([
        CardSpec(slot=2, kind="centaur", memory="dram", capacity_per_dimm=GIB),
        CardSpec(slot=0, kind="contutto", memory="mram",
                 capacity_per_dimm=256 * MIB),
    ])
    latency = system.measure_latency_ns("contutto", samples=32)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..buffer import Centaur, CentaurConfig, DEFAULT
from ..buffer.base import MemoryBuffer
from ..dmi import TrainingConfig
from ..errors import ConfigurationError
from ..firmware import (
    BootReport,
    CardDescriptor,
    CentaurFsiSlave,
    ConTuttoFsiSlave,
    CsrBlock,
    IplFlow,
    PowerSequencer,
    ServiceProcessor,
    build_contutto_csrs,
    set_latency_knob,
)
from ..fpga import ConTuttoBuffer, FpgaTimingConfig, SHIPPING_TIMING
from ..hybrid import TieringSpec, build_tiered
from ..memory import (
    Ddr3Timing,
    DdrDram,
    MemoryDevice,
    NvdimmN,
    SttMram,
    spd_for_device,
)
from ..processor import Power8Socket, SocketConfig
from ..sim import Rng, Simulator
from ..storage import PmemConfig, PmemRegion
from ..telemetry import occupancy_sources, probe
from ..units import GIB, MIB

_MEMORY_FACTORIES = {
    "dram": lambda cap, name, ecc, timing: DdrDram(
        cap, name=name, ecc_enabled=ecc,
        **({} if timing is None else {"timing": timing}),
    ),
    "mram": lambda cap, name, ecc, timing: SttMram(cap, name=name),
    "nvdimm": lambda cap, name, ecc, timing: NvdimmN(cap, name=name),
}


@dataclass
class CardSpec:
    """Declarative description of one card in the system."""

    slot: int
    kind: str = "centaur"            # "centaur" | "contutto"
    memory: str = "dram"             # "dram" | "mram" | "nvdimm" | "tiered"
    capacity_per_dimm: int = 1 * GIB
    #: Centaur-only: which latency configuration
    centaur_config: CentaurConfig = DEFAULT
    #: ConTutto-only knobs
    knob_position: int = 0
    inline_accel: bool = False
    timing: FpgaTimingConfig = SHIPPING_TIMING
    #: SEC-DED ECC on the DRAM DIMMs (DRAM only)
    ecc: bool = False
    #: DRAM-only: override the DIMM timing grade (None = DDR3-1333 CL9)
    ddr_timing: Optional["Ddr3Timing"] = None
    #: ConTutto-only: the Section 3.3 freeze workaround (retransmit while
    #: preparing replay); disabling it makes slow replays fail the channel
    freeze: bool = True
    #: tiered-memory cards only: how the capacity splits into fast/slow
    #: tiers and which migration policy runs (docs/hybrid.md)
    tiering: Optional[TieringSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in ("centaur", "contutto"):
            raise ConfigurationError(f"unknown card kind {self.kind!r}")
        if self.memory not in _MEMORY_FACTORIES and self.memory != "tiered":
            raise ConfigurationError(f"unknown memory type {self.memory!r}")
        if self.kind == "centaur" and self.memory != "dram":
            raise ConfigurationError(
                "Centaur only drives DRAM; non-DRAM needs a ConTutto card "
                "(the point of the paper)"
            )
        if self.ddr_timing is not None and self.memory != "dram":
            raise ConfigurationError(
                f"ddr_timing only applies to DRAM DIMMs, not {self.memory!r}"
            )
        if self.tiering is not None and self.memory != "tiered":
            raise ConfigurationError(
                "a tiering spec needs memory='tiered'"
            )


class ContuttoSystem:
    """A booted POWER8 system with a mix of CDIMMs and ConTutto cards."""

    def __init__(
        self,
        sim: Simulator,
        socket: Power8Socket,
        cards: Dict[int, CardDescriptor],
        boot_report: BootReport,
        fsp: ServiceProcessor,
    ):
        self.sim = sim
        self.socket = socket
        self.cards = cards
        self.boot_report = boot_report
        self.fsp = fsp

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(
        cls,
        specs: List[CardSpec],
        seed: int = 0,
        socket_config: SocketConfig = SocketConfig(),
        training: Optional[TrainingConfig] = None,
    ) -> "ContuttoSystem":
        """Create, wire, and boot a system from card specifications."""
        if not specs:
            raise ConfigurationError("a system needs at least one card")
        sim = Simulator()
        rng = Rng(seed, "system")
        socket = Power8Socket(sim, socket_config, rng=rng.fork("socket"))
        fsp = ServiceProcessor(sim)
        descriptors: Dict[int, CardDescriptor] = {}
        for spec in specs:
            descriptors[spec.slot] = cls._make_card(sim, spec)
        flow = IplFlow(sim, socket, fsp=fsp, training=training)
        report = flow.boot(list(descriptors.values()))
        trace = probe.session
        if trace is not None and trace.occupancy is not None:
            # point the active session's queue-depth sampler at this
            # system's queues (replacing any previous build's sources)
            trace.occupancy.set_sources(occupancy_sources(socket))
        return cls(sim, socket, descriptors, report, fsp)

    @staticmethod
    def _make_device(spec: CardSpec, name: str) -> MemoryDevice:
        if spec.memory == "tiered":
            return build_tiered(
                spec.capacity_per_dimm, name, spec.tiering or TieringSpec()
            )
        return _MEMORY_FACTORIES[spec.memory](
            spec.capacity_per_dimm, name, spec.ecc, spec.ddr_timing
        )

    @staticmethod
    def _make_card(sim: Simulator, spec: CardSpec) -> CardDescriptor:
        if spec.kind == "centaur":
            devices = [
                ContuttoSystem._make_device(spec, f"s{spec.slot}.d{i}")
                for i in range(4)
            ]
            buffer: MemoryBuffer = Centaur(
                sim, devices, spec.centaur_config, name=f"centaur{spec.slot}"
            )
            return CardDescriptor(
                slot=spec.slot, buffer=buffer,
                fsi_slave=CentaurFsiSlave(sim, f"fsi{spec.slot}"),
            )
        devices = [
            ContuttoSystem._make_device(spec, f"s{spec.slot}.d{i}")
            for i in range(2)
        ]
        buffer = ConTuttoBuffer(
            sim, devices, timing=spec.timing, knob_position=spec.knob_position,
            inline_accel=spec.inline_accel, freeze_workaround=spec.freeze,
            name=f"contutto{spec.slot}",
        )
        spd_images = [spd_for_device(d).encode() for d in devices]
        return CardDescriptor(
            slot=spec.slot,
            buffer=buffer,
            fsi_slave=ConTuttoFsiSlave(
                sim, build_contutto_csrs(buffer), spd_images
            ),
            sequencer=PowerSequencer(sim, name=f"pwr{spec.slot}"),
        )

    # -- lookups -----------------------------------------------------------------

    def buffer_in_slot(self, slot: int) -> MemoryBuffer:
        return self.cards[slot].buffer

    def slots_of_kind(self, kind: str) -> List[int]:
        return [s for s, c in self.cards.items() if c.buffer.kind == kind]

    def region_for_slot(self, slot: int):
        """The memory-map region owned by a slot's channel."""
        for region in self.socket.memory_map.regions:
            if region.channel == slot:
                return region
        raise ConfigurationError(f"slot {slot} has no mapped region (boot failed?)")

    # -- measurement helpers ---------------------------------------------------------

    def measure_latency_ns(self, kind_or_slot, samples: int = 32) -> float:
        """Latency-to-memory of a card's region (Tables 2 and 3 methodology)."""
        if isinstance(kind_or_slot, str):
            slots = self.slots_of_kind(kind_or_slot)
            if not slots:
                raise ConfigurationError(f"no {kind_or_slot!r} card in the system")
            slot = slots[0]
        else:
            slot = kind_or_slot
        region = self.region_for_slot(slot)
        return self.socket.measure_memory_latency_ns(
            region.base, region.os_size, samples=samples
        )

    def pmem_region(
        self, slot: Optional[int] = None, config: PmemConfig = PmemConfig()
    ) -> PmemRegion:
        """A pmem driver over the system's (first) non-volatile region."""
        nvm = self.socket.memory_map.nvm_regions()
        if slot is not None:
            nvm = [r for r in nvm if r.channel == slot]
        if not nvm:
            raise ConfigurationError("system has no non-volatile region")
        region = nvm[0]
        return PmemRegion(
            self.sim, self.socket, region.base, region.os_size, config,
            name=f"pmem.ch{region.channel}",
        )

    def set_latency_knob(self, slot: int, position: int) -> None:
        """Set a ConTutto card's latency knob *through the software path*.

        Goes over FSI -> I2C -> FPGA CSR exactly as the firmware does, and
        runs the simulator until the register write lands (Section 4.1:
        "each knob position, controllable from software").
        """
        card = self.cards[slot]
        if not isinstance(card.fsi_slave, ConTuttoFsiSlave):
            raise ConfigurationError(f"slot {slot} is not a ConTutto card")
        done = set_latency_knob(card.fsi_slave, position)
        self.sim.run_until_signal(done, timeout_ps=10**12)

    @property
    def total_memory_bytes(self) -> int:
        return sum(r.os_size for r in self.socket.memory_map.regions)
