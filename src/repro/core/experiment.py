"""The experiment harness: one entry point per paper table/figure.

Every function builds the systems it needs, *measures* (no canned results
— latencies come out of the DMI/buffer/DRAM simulation, IOPS out of the
storage stack, throughput out of the accelerator models), and returns a
:class:`~repro.core.results.ResultTable` with the paper's values alongside
for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..accel import (
    AccessProcessor,
    ControlBlock,
    FftEngineFarm,
    KERNEL_FFT,
    KERNEL_MEMCOPY,
    KERNEL_MINMAX,
    MemcopyEngine,
    MinMaxEngine,
    SoftwareBaselines,
)
from ..buffer import (
    CONSERVATIVE,
    DEFAULT,
    FUNCTION_MATCHED,
    LATENCY_OPTIMIZED,
    RELAXED,
)
from ..fpga import base_design_resources
from ..memory import (
    FIGURE8_TECHNOLOGIES,
    DdrDram,
    MemoryController,
    memory_bus_lifetime_s,
)
from ..sim import Simulator
from ..storage import (
    FLASH_X4_PCIE,
    HardDiskDrive,
    MRAM_PCIE,
    NVRAM_PCIE,
    NvWriteCache,
    PcieAttachedStore,
    PmemBlockDevice,
    SolidStateDrive,
    WriteCacheConfig,
)
from ..telemetry import probe
from ..units import GIB, MIB, S
from ..workloads import Db2BluWorkload, FioJob, FioRunner, GpfsJob, GpfsWriter, SpecSuite
from . import calibration as cal
from .results import ResultTable
from .system import CardSpec, ContuttoSystem


def _set_attribution_scenario(label: str) -> None:
    """Label journeys begun from here on (no-op when telemetry is off).

    Measurement loops set the configuration's label just before measuring
    and a ``<label>:boot`` label before each build, so boot-time traffic
    never pollutes a measurement scenario in the latency breakdown.
    """
    trace = probe.session
    if trace is not None and trace.journeys is not None:
        trace.journeys.set_scenario(label)

# ---------------------------------------------------------------------------
# Table 1 — FPGA resource utilization
# ---------------------------------------------------------------------------


def run_table1(seed: int = 0) -> ResultTable:
    """Regenerate Table 1 from the structural resource model.

    ``seed`` is accepted for harness uniformity; the resource table is
    structural and has no stochastic element.
    """
    del seed
    table = ResultTable(
        "Table 1: FPGA resource utilization (base ConTutto design)",
        ["Resource", "Available", "Utilized", "Utilized %", "Paper utilized"],
    )
    design = base_design_resources()
    paper = cal.TABLE1_RESOURCES
    for resource, available, utilized in design.table():
        table.add_row(
            resource, available, utilized,
            f"{utilized / available:.0%}", paper[resource][1],
        )
    head = design.headroom()
    table.add_note(
        f"headroom for acceleration: {head.alms:,} ALMs, {head.m20k} M20K"
    )
    return table


# ---------------------------------------------------------------------------
# Tables 2/3 + Figures 6/7 — variable latency
# ---------------------------------------------------------------------------


def _centaur_system(config, seed: int = 0) -> ContuttoSystem:
    return ContuttoSystem.build(
        [CardSpec(slot=0, kind="centaur", capacity_per_dimm=1 * GIB,
                  centaur_config=config)],
        seed=seed,
    )


def _contutto_system(knob: int, seed: int = 0) -> ContuttoSystem:
    return ContuttoSystem.build(
        [CardSpec(slot=0, kind="contutto", capacity_per_dimm=4 * GIB,
                  knob_position=knob)],
        seed=seed,
    )


def measure_centaur_latencies(samples: int = 24, seed: int = 0) -> Dict[str, float]:
    """Measured latency-to-memory for the four Table 2 configurations."""
    out = {}
    for config in (LATENCY_OPTIMIZED, DEFAULT, CONSERVATIVE, RELAXED):
        _set_attribution_scenario(f"{config.name}:boot")
        system = _centaur_system(config, seed=seed)
        _set_attribution_scenario(config.name)
        out[config.name] = system.measure_latency_ns("centaur", samples=samples)
    return out


def measure_contutto_latencies(samples: int = 24, seed: int = 0) -> Dict[str, float]:
    """Measured latencies for the Table 3 configurations."""
    out = {}
    _set_attribution_scenario("centaur:boot")
    system = _centaur_system(LATENCY_OPTIMIZED, seed=seed)
    _set_attribution_scenario("centaur")
    out["centaur"] = system.measure_latency_ns("centaur", samples=samples)
    _set_attribution_scenario("function_matched:boot")
    system = _centaur_system(FUNCTION_MATCHED, seed=seed)
    _set_attribution_scenario("function_matched")
    out["function_matched"] = system.measure_latency_ns("centaur", samples=samples)
    for knob, label in [(0, "contutto_base"), (2, "contutto_knob2"),
                        (6, "contutto_knob6"), (7, "contutto_knob7")]:
        _set_attribution_scenario(f"{label}:boot")
        system = _contutto_system(knob, seed=seed)
        _set_attribution_scenario(label)
        out[label] = system.measure_latency_ns("contutto", samples=samples)
    return out


def run_table2(samples: int = 24, seed: int = 0) -> ResultTable:
    """Centaur latency knobs vs DB2 BLU 29-query runtime."""
    table = ResultTable(
        "Table 2: Centaur latency settings vs DB2 BLU query runtime",
        ["Configuration", "Latency (ns)", "Paper latency",
         "DB2 runtime (s)", "Paper runtime"],
    )
    workload = Db2BluWorkload()
    latencies = measure_centaur_latencies(samples, seed=seed)
    for (name, paper_lat, paper_rt) in cal.TABLE2_ROWS:
        measured = latencies[name]
        runtime = workload.total_runtime_s(measured)
        table.add_row(name, measured, paper_lat, runtime, paper_rt)
    base = table.rows[0][3]
    worst = table.rows[-1][3]
    table.add_note(
        f"runtime degradation across >3x latency: {worst / base - 1:.1%} "
        f"(paper: <8%)"
    )
    return table


def run_fig6(samples: int = 24, seed: int = 0) -> ResultTable:
    """SPEC CINT2006 ratios at the Centaur latency settings."""
    suite = SpecSuite()
    latencies = measure_centaur_latencies(samples, seed=seed)
    ordered = [name for name, _, _ in cal.TABLE2_ROWS]
    table = ResultTable(
        "Figure 6: SPEC CINT2006 ratios with variable latency on Centaur",
        ["Benchmark"] + [f"{name} ({latencies[name]:.0f}ns)" for name in ordered],
    )
    series = {name: suite.ratios(latencies[name]) for name in ordered}
    for profile in suite.profiles:
        table.add_row(
            profile.name, *[series[name][profile.name] for name in ordered]
        )
    return table


def run_table3(samples: int = 24, seed: int = 0) -> ResultTable:
    """Variable latency settings on ConTutto."""
    table = ResultTable(
        "Table 3: variable latency settings on ConTutto",
        ["Configuration", "Latency (ns)", "Paper latency (ns)"],
    )
    measured = measure_contutto_latencies(samples, seed=seed)
    for label, paper in cal.TABLE3_LATENCIES_NS.items():
        table.add_row(label, measured[label], paper)
    table.add_row("centaur_function_matched", measured["function_matched"],
                  cal.TABLE3_FUNCTION_MATCHED_NS)
    base = measured["contutto_base"]
    table.add_note(
        f"ConTutto vs function-matched Centaur: "
        f"+{base / measured['function_matched'] - 1:.0%} (paper ~+33%); "
        f"vs optimized Centaur: +{base / measured['centaur'] - 1:.0%} "
        f"(paper ~+280%)"
    )
    return table


def run_fig7(samples: int = 24, seed: int = 0) -> ResultTable:
    """SPEC ratios with ConTutto latencies (Centaur as baseline)."""
    suite = SpecSuite()
    measured = measure_contutto_latencies(samples, seed=seed)
    ordered = ["centaur", "contutto_base", "contutto_knob2",
               "contutto_knob6", "contutto_knob7"]
    table = ResultTable(
        "Figure 7: SPEC CINT2006 ratios with variable memory latency on "
        "ConTutto (Centaur baseline)",
        ["Benchmark"] + [f"{name} ({measured[name]:.0f}ns)" for name in ordered]
        + ["degradation @knob7"],
    )
    for profile in suite.profiles:
        ratios = [suite.model.spec_ratio(profile, measured[name]) for name in ordered]
        degradation = ratios[0] / ratios[-1] - 1
        table.add_row(profile.name, *ratios, f"{degradation:.1%}")
    pop = suite.population_summary(measured["centaur"], measured["contutto_knob7"])
    table.add_note(
        f"population at ~6x latency: {pop['under_2pct']:.0%} under 2%, "
        f"{pop['under_10pct']:.0%} under 10%, max degradation "
        f"{pop['max']:.0%} (paper: half <2%, two-thirds <10%, one >50%)"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 8 — endurance
# ---------------------------------------------------------------------------


def run_fig8(seed: int = 0) -> ResultTable:
    """Endurance comparison + implied lifetime on the memory bus.

    ``seed`` is accepted for harness uniformity; endurance is analytic.
    """
    del seed
    table = ResultTable(
        "Figure 8: endurance of non-volatile memory technologies",
        ["Technology", "Write cycles", "Paper cycles",
         "Lifetime @10GB/s into 256MB"],
    )
    for spec in FIGURE8_TECHNOLOGIES:
        life_s = memory_bus_lifetime_s(spec, 256 * MIB, 10e9)
        if life_s > 3.15e7:
            lifetime = f"{life_s / 3.15e7:,.0f} years"
        elif life_s > 3600:
            lifetime = f"{life_s / 3600:.1f} hours"
        else:
            lifetime = f"{life_s:.0f} s"
        table.add_row(
            spec.technology, f"{spec.cycles:.0e}",
            f"{cal.FIG8_ENDURANCE_CYCLES[spec.technology]:.0e}", lifetime,
        )
    table.add_note(
        "endurance is why STT-MRAM is credible on a memory bus and flash is not"
    )
    return table


# ---------------------------------------------------------------------------
# Table 4 — GPFS write IOPS
# ---------------------------------------------------------------------------


def run_table4(writes: int = 24, seed: int = 0) -> ResultTable:
    """GPFS small-random-write IOPS across the three persistent stores."""
    table = ResultTable(
        "Table 4: GPFS synchronous small-write performance",
        ["Technology", "Interface", "IOPS", "Paper IOPS"],
    )
    # default seed=0 preserves the historical GpfsJob stream (seed 99)
    job = GpfsJob(total_writes=writes, seed=99 + seed)

    # HDD direct
    _set_attribution_scenario("gpfs:hdd")
    sim = Simulator()
    hdd = HardDiskDrive(sim, 1 * GIB)
    result = GpfsWriter(sim).run(_DirectWriteStore(hdd), job)
    table.add_row("Hard Disk Drive", "SAS", result.iops, cal.TABLE4_ROWS["hdd"][2])

    # SSD direct
    _set_attribution_scenario("gpfs:ssd")
    sim = Simulator()
    ssd = SolidStateDrive(sim, 1 * GIB)
    result = GpfsWriter(sim).run(_DirectWriteStore(ssd), job)
    table.add_row("SSD", "SAS", result.iops, cal.TABLE4_ROWS["ssd"][2])

    # STT-MRAM behind ConTutto as a write cache in front of the HDD
    _set_attribution_scenario("gpfs:wcache:boot")
    system = ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory="mram",
                     capacity_per_dimm=128 * MIB),
        ],
        seed=seed,
    )
    pmem_blk = PmemBlockDevice(system.pmem_region())
    hdd = HardDiskDrive(system.sim, 4 * GIB)
    cache = NvWriteCache(
        system.sim, pmem_blk, hdd,
        WriteCacheConfig(segment_bytes=4 * MIB, segments=16),
    )
    _set_attribution_scenario("gpfs:wcache")
    result = GpfsWriter(system.sim).run(cache, job)
    mram_iops = result.iops
    table.add_row("STT-MRAM (ConTutto)", "DMI (memory link)", mram_iops,
                  cal.TABLE4_ROWS["stt_mram"][2])

    ssd_iops = table.rows[1][2]
    table.add_note(
        f"MRAM-on-DMI over SSD: {mram_iops / ssd_iops:.1f}x (paper: 8.3x)"
    )
    return table


class _DirectWriteStore:
    """Adapter: GPFS writer -> bare block device."""

    def __init__(self, device):
        self.device = device

    def write(self, offset, nbytes):
        return self.device.submit_write(offset % self.device.capacity_bytes, nbytes)


# ---------------------------------------------------------------------------
# Figures 9/10 — FIO across technologies and attach points
# ---------------------------------------------------------------------------

FIO_STORES = ["flash_x4_pcie", "nvram_pcie", "mram_pcie",
              "mram_contutto", "nvdimm_contutto"]


def run_fio_matrix(
    ios: int = 32, iodepth: int = 4, seed: int = 0
) -> Tuple[ResultTable, ResultTable]:
    """FIO over every (technology, attach point): Figures 9 and 10.

    Returns ``(fig9_iops, fig10_latency)``.
    """
    # default seed=0 preserves the historical FioJob stream (seed 1234)
    job_seed = 1234 + seed
    results = {}
    for name in FIO_STORES:
        _set_attribution_scenario(f"fio:{name}:boot")
        device, sim = _make_fio_store(name, seed=seed)
        _set_attribution_scenario(f"fio:{name}")
        runner = FioRunner(sim)
        lat_read = runner.run(device, FioJob(rw="randread", total_ios=ios, seed=job_seed))
        lat_write = runner.run(device, FioJob(rw="randwrite", total_ios=ios, seed=job_seed))
        iops_read = runner.run(
            device, FioJob(rw="randread", iodepth=iodepth, total_ios=ios, seed=job_seed)
        )
        iops_write = runner.run(
            device, FioJob(rw="randwrite", iodepth=iodepth, total_ios=ios, seed=job_seed)
        )
        results[name] = {
            "read_lat_us": lat_read.mean_latency_us,
            "write_lat_us": lat_write.mean_latency_us,
            "read_iops": iops_read.iops,
            "write_iops": iops_write.iops,
        }

    fig9 = ResultTable(
        "Figure 9: FIO IOPS for non-volatile technologies and attach points",
        ["Store", "Read IOPS", "Write IOPS"],
    )
    fig10 = ResultTable(
        "Figure 10: FIO latency for non-volatile technologies and attach points",
        ["Store", "Read latency (us)", "Write latency (us)"],
    )
    for name in FIO_STORES:
        r = results[name]
        fig9.add_row(name, r["read_iops"], r["write_iops"])
        fig10.add_row(name, r["read_lat_us"], r["write_lat_us"])

    nvram, mram_ct = results["nvram_pcie"], results["mram_contutto"]
    mram_pcie, nvdimm_ct = results["mram_pcie"], results["nvdimm_contutto"]
    fig10.add_note(
        f"MRAM-CT vs NVRAM-PCIe latency: "
        f"{nvram['read_lat_us'] / mram_ct['read_lat_us']:.1f}x read / "
        f"{nvram['write_lat_us'] / mram_ct['write_lat_us']:.1f}x write "
        f"(paper: 6.6x / 15x)"
    )
    fig10.add_note(
        f"MRAM-CT vs MRAM-PCIe latency: "
        f"{mram_pcie['read_lat_us'] / mram_ct['read_lat_us']:.1f}x read / "
        f"{mram_pcie['write_lat_us'] / mram_ct['write_lat_us']:.1f}x write "
        f"(paper: 2.4x / 5x)"
    )
    fig9.add_note(
        f"NVDIMM-CT vs NVRAM-PCIe IOPS: "
        f"{nvdimm_ct['read_iops'] / nvram['read_iops']:.1f}x read / "
        f"{nvdimm_ct['write_iops'] / nvram['write_iops']:.1f}x write "
        f"(paper: 6.5x / 7.5x)"
    )
    return fig9, fig10


def _make_fio_store(name: str, seed: int = 0):
    """Build one store of the FIO matrix; returns (device, sim)."""
    if name.endswith("_pcie"):
        sim = Simulator()
        profile = {
            "flash_x4_pcie": FLASH_X4_PCIE,
            "nvram_pcie": NVRAM_PCIE,
            "mram_pcie": MRAM_PCIE,
        }[name]
        return PcieAttachedStore(sim, 1 * GIB, profile), sim
    memory = "mram" if name.startswith("mram") else "nvdimm"
    capacity = 128 * MIB if memory == "mram" else 1 * GIB
    system = ContuttoSystem.build(
        [
            CardSpec(slot=2, kind="centaur", capacity_per_dimm=1 * GIB),
            CardSpec(slot=0, kind="contutto", memory=memory,
                     capacity_per_dimm=capacity),
        ],
        seed=seed,
    )
    return PmemBlockDevice(system.pmem_region()), system.sim


# ---------------------------------------------------------------------------
# Table 5 — near-memory acceleration
# ---------------------------------------------------------------------------


def run_table5(size_mib: int = 16, seed: int = 0) -> ResultTable:
    """The three accelerated kernels vs their software baselines.

    ``size_mib`` scales the block the kernels process (the paper used 1 GB
    blocks; throughput is size-independent once streaming saturates).
    """
    nbytes = size_mib * MIB
    table = ResultTable(
        "Table 5: performance of accelerated functions on ConTutto",
        ["Function", "ConTutto (2 DIMM ports)", "Software (CDIMMs)",
         "Speedup", "Paper ConTutto", "Paper software"],
    )
    software = SoftwareBaselines()

    def fresh_platform():
        sim = Simulator()
        dimms = [
            DdrDram(max(256 * MIB, 2 * nbytes), name=f"d{i}", refresh_enabled=False)
            for i in range(2)
        ]
        ports = [MemoryController(sim, d) for d in dimms]
        return sim, dimms, AccessProcessor(sim, ports)

    def preload(dimms, raw):
        chunk = 8 << 10
        for pos in range(0, len(raw), chunk):
            chunk_no = pos // chunk
            dimms[chunk_no % 2].backing.write(
                (chunk_no // 2) * chunk, raw[pos : pos + chunk]
            )

    # memory copy
    sim, dimms, ap = fresh_platform()
    preload(dimms, bytes(nbytes))
    _set_attribution_scenario("accel:memcopy")
    engine = MemcopyEngine(sim, ap)
    t0 = sim.now_ps
    engine.run_to_completion(
        ControlBlock(opcode=KERNEL_MEMCOPY, src=0, dst=nbytes, length=nbytes)
    )
    accel = nbytes / ((sim.now_ps - t0) / S) / 1e9
    sw = software.memcopy_gb_s()
    table.add_row("Memory copy", f"{accel:.1f} GB/s", f"{sw:.1f} GB/s",
                  f"{accel / sw:.1f}x", "6 GB/s", "3.2 GB/s")

    # min/max
    sim, dimms, ap = fresh_platform()
    # default seed=0 preserves the historical min/max data stream (seed 11)
    rng = np.random.default_rng(11 + seed)
    preload(dimms, rng.integers(-(2**31), 2**31 - 1, nbytes // 4, dtype=np.int32).tobytes())
    _set_attribution_scenario("accel:minmax")
    engine = MinMaxEngine(sim, ap)
    t0 = sim.now_ps
    engine.run_to_completion(ControlBlock(opcode=KERNEL_MINMAX, src=0, length=nbytes))
    accel = nbytes / ((sim.now_ps - t0) / S) / 1e9
    sw = software.minmax_gb_s()
    table.add_row("Min/max (32-bit ints)", f"{accel:.1f} GB/s", f"{sw:.1f} GB/s",
                  f"{accel / sw:.0f}x", "10.5 GB/s", "0.5 GB/s")

    # 1024-point FFTs
    sim, dimms, ap = fresh_platform()
    preload(dimms, bytes(nbytes))
    _set_attribution_scenario("accel:fft")
    farm = FftEngineFarm(sim, ap, num_engines=8)
    t0 = sim.now_ps
    farm.run_to_completion(
        ControlBlock(opcode=KERNEL_FFT, src=0, dst=nbytes, length=nbytes)
    )
    samples = nbytes // 8
    accel = 2 * samples / ((sim.now_ps - t0) / S) / 1e9
    sw = software.fft_gsamples_s()
    table.add_row("1024-pt FFT", f"{accel:.2f} Gsamples/s", f"{sw:.2f} Gsamples/s",
                  f"{accel / sw:.1f}x", "1.3 Gsamples/s", "0.68 Gsamples/s")
    table.add_note(
        "FFT throughput counts samples moved (in + out) per second, the "
        "convention that makes the paper's 1.3 Gs/s consistent with its "
        "10-12 GB/s port-bandwidth bound"
    )
    return table
