"""Paper-reported values for every table and figure.

Single source of truth the benchmarks and EXPERIMENTS.md compare against.
All values transcribed from the MICRO-50 paper; where the paper gives a
chart rather than numbers (Figures 6/7/9/10), the quantitative claims from
the accompanying text are recorded instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# -- Table 1: FPGA resource utilization ------------------------------------

TABLE1_RESOURCES = {
    "ALMs": (317_000, 136_856),       # (available, utilized)
    "Registers": (634_000, 191_403),
    "M20K": (2_640, 244),
}
TABLE1_UTILIZATION_PCT = {"ALMs": 43, "Registers": 30, "M20K": 9}

# -- Table 2: Centaur latency settings vs DB2 BLU runtime -------------------

#: (config name, latency ns, DB2 BLU 29-query runtime s)
TABLE2_ROWS: List[Tuple[str, float, float]] = [
    ("latency_optimized", 79, 5_387),
    ("default", 83, 5_451),
    ("conservative", 116, 5_484),
    ("relaxed", 249, 5_802),
]

#: the text's claim: >3x latency increase -> <8% runtime increase
TABLE2_MAX_DEGRADATION = 0.08

# -- Table 3: variable latency settings on ConTutto ---------------------------

#: configuration -> measured latency-to-memory (ns)
TABLE3_LATENCIES_NS: Dict[str, float] = {
    "centaur": 97,
    "contutto_base": 390,
    "contutto_knob2": 438,
    "contutto_knob6": 534,
    "contutto_knob7": 558,
}
#: Centaur matched to ConTutto's hardware functionality measured 293 ns
TABLE3_FUNCTION_MATCHED_NS = 293
#: ConTutto vs function-matched Centaur: ~27% higher; vs optimized: ~280%
TABLE3_OVERHEAD_VS_MATCHED = 0.33  # 390/293 - 1
TABLE3_OVERHEAD_VS_OPTIMIZED = 3.0  # 390/97 - 1

# -- Figures 6/7: SPEC CINT2006 sensitivity ------------------------------------

#: at ~6x latency: half the suite under 2%, two-thirds under 10%,
#: a 15-35% band, one benchmark over 50%
FIG7_POPULATION = {
    "under_2pct": 0.5,
    "under_10pct": 2 / 3,
    "over_50pct_count": 1,
}

# -- Figure 8: endurance (write cycles per cell) ---------------------------------

FIG8_ENDURANCE_CYCLES = {
    "nand_tlc": 3e3,
    "nand_mlc": 1e4,
    "nand_slc": 1e5,
    "3dxpoint": 1e7,
    "reram": 1e9,
    "stt_mram": 1e15,
}

# -- Table 4: GPFS IOPS ------------------------------------------------------------

#: technology -> (size, interface, IOPS)
TABLE4_ROWS = {
    "hdd": ("1.1 TB", "SAS", 75),
    "ssd": ("400 GB", "SAS", 15_000),
    "stt_mram": ("256 MB", "DMI (memory link)", 125_000),
}
TABLE4_MRAM_OVER_SSD = 8.3

# -- Figures 9/10: FIO IOPS and latency ratios ---------------------------------------

#: MRAM-on-ConTutto vs NVRAM (flash-backed DRAM) on PCIe
FIG9_10_MRAM_CT_VS_NVRAM_PCIE = {
    "read_latency_x": 6.6,
    "write_latency_x": 15.0,
    "read_iops_x": 4.5,
    "write_iops_x": 6.2,
}
#: MRAM-on-ConTutto vs MRAM-on-PCIe (same technology, different attach)
FIG9_10_MRAM_CT_VS_MRAM_PCIE = {
    "read_latency_x": 2.4,
    "write_latency_x": 5.0,
    "read_iops_x": 1.5,
    "write_iops_x": 2.2,
}
#: NVDIMM-on-ConTutto vs NVRAM-on-PCIe
FIG9_10_NVDIMM_CT_VS_NVRAM_PCIE = {
    "read_latency_x": 7.5,
    "write_latency_x": 12.5,
    "read_iops_x": 6.5,
    "write_iops_x": 7.5,
}

# -- Table 5: accelerated functions ----------------------------------------------------

#: kernel -> (ConTutto throughput, software throughput, unit)
TABLE5_ROWS = {
    "memcopy": (6.0, 3.2, "GB/s"),
    "minmax": (10.5, 0.5, "GB/s"),
    "fft": (1.3, 0.68, "Gsamples/s"),
}
#: observed aggregate DIMM-port bandwidth for accelerators
TABLE5_PORT_BANDWIDTH_GB_S = (10.0, 12.0)

# -- abstract: headline claims ------------------------------------------------------------

ABSTRACT_MAX_LATENCY_IMPROVEMENT_X = 12.5
ABSTRACT_MAX_IOPS_IMPROVEMENT_X = 7.5
DMI_AGGREGATE_GB_S = 35  # 14 + 21 lanes at 8 Gb/s


@dataclass(frozen=True)
class Tolerance:
    """How close a reproduction must come to a paper value."""

    relative: float = 0.25

    def check(self, measured: float, expected: float) -> bool:
        if expected == 0:
            return measured == 0
        return abs(measured - expected) / abs(expected) <= self.relative
