"""Core integration layer: system builder, experiment harness, results."""

from . import calibration
from .experiment import (
    FIO_STORES,
    measure_centaur_latencies,
    measure_contutto_latencies,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fio_matrix,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from .results import ResultTable
from .system import CardSpec, ContuttoSystem

__all__ = [
    "CardSpec",
    "ContuttoSystem",
    "FIO_STORES",
    "ResultTable",
    "calibration",
    "measure_centaur_latencies",
    "measure_contutto_latencies",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fio_matrix",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
