"""Unit helpers for simulated time, frequency, and bandwidth.

All simulated time in this library is kept as **integer picoseconds** so that
event ordering is exact and runs are reproducible across platforms.  These
helpers convert between human-friendly units and the internal representation.

Conventions
-----------
* ``*_to_ps`` functions return ``int`` picoseconds (rounded).
* ``ps_to_*`` functions return ``float`` in the requested unit.
* Frequencies are given in hertz; ``period_ps`` converts a frequency to the
  integer picosecond period of one cycle.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
S = 1_000_000_000_000


def ns_to_ps(ns: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(ns * NS))


def us_to_ps(us: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return int(round(us * US))


def ms_to_ps(ms: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return int(round(ms * MS))


def s_to_ps(seconds: float) -> int:
    """Convert seconds to integer picoseconds."""
    return int(round(seconds * S))


def ps_to_ns(ps: int) -> float:
    """Convert picoseconds to nanoseconds."""
    return ps / NS


def ps_to_us(ps: int) -> float:
    """Convert picoseconds to microseconds."""
    return ps / US


def ps_to_ms(ps: int) -> float:
    """Convert picoseconds to milliseconds."""
    return ps / MS


def ps_to_s(ps: int) -> float:
    """Convert picoseconds to seconds."""
    return ps / S


# -- frequency -------------------------------------------------------------

KHZ = 1_000
MHZ = 1_000_000
GHZ = 1_000_000_000


def period_ps(freq_hz: float) -> int:
    """Integer picosecond period of one cycle at ``freq_hz``.

    >>> period_ps(250 * MHZ)
    4000
    >>> period_ps(8 * GHZ)
    125
    """
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return int(round(S / freq_hz))


def cycles_to_ps(cycles: int, freq_hz: float) -> int:
    """Duration of ``cycles`` clock cycles at ``freq_hz``, in picoseconds."""
    return cycles * period_ps(freq_hz)


# -- data sizes ------------------------------------------------------------

KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

CACHE_LINE_BYTES = 128  # POWER8 cache line / DMI operation granularity


def gb_per_s(num_bytes: int, duration_ps: int) -> float:
    """Achieved bandwidth in GB/s (decimal gigabytes) over ``duration_ps``."""
    if duration_ps <= 0:
        raise ValueError(f"duration must be positive, got {duration_ps}")
    return num_bytes / (duration_ps / S) / 1e9


def transfer_ps(num_bytes: int, bandwidth_gb_s: float) -> int:
    """Time to move ``num_bytes`` at ``bandwidth_gb_s`` decimal GB/s."""
    if bandwidth_gb_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gb_s}")
    return int(round(num_bytes / (bandwidth_gb_s * 1e9) * S))
