"""Tiny inline-SVG builders for the HTML report.

No plotting dependency, no scripts, no external fetches: every chart is
a handful of SVG elements assembled from fixed-precision numbers (so the
markup is stable across runs) and inlined straight into the page.  Three
shapes cover everything the report draws:

* :func:`hbar_svg` — labelled horizontal bars (stage shares, hotspots);
* :func:`sparkline_svg` — a polyline over evenly spaced samples
  (service windows, fault buckets);
* :func:`scatter_svg` — x/y points with highlighted subset (Pareto
  fronts, dominated vs non-dominated trials).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: default bar/spark colors (picked for contrast on a white page)
BAR_COLOR = "#4878a8"
ACCENT_COLOR = "#c0504d"
MUTED_COLOR = "#b0b8c0"


def _fmt(value: float) -> str:
    """Fixed-precision coordinate (stable markup, compact output)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def hbar_svg(
    rows: Sequence[Tuple[str, float]],
    *,
    width: int = 420,
    bar_height: int = 16,
    gap: int = 4,
    label_width: int = 150,
    color: str = BAR_COLOR,
    fmt: str = "{:.1%}",
) -> str:
    """Labelled horizontal bars, scaled to the largest value."""
    if not rows:
        return ""
    peak = max(value for _, value in rows) or 1.0
    span = width - label_width - 60
    height = len(rows) * (bar_height + gap)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
    ]
    for i, (label, value) in enumerate(rows):
        y = i * (bar_height + gap)
        w = max(0.0, span * value / peak)
        ty = y + bar_height - 4
        parts.append(
            f'<text x="{label_width - 6}" y="{ty}" text-anchor="end" '
            f'font-size="11">{_esc(label)}</text>'
        )
        parts.append(
            f'<rect x="{label_width}" y="{y}" width="{_fmt(w)}" '
            f'height="{bar_height}" fill="{color}"/>'
        )
        parts.append(
            f'<text x="{_fmt(label_width + w + 4)}" y="{ty}" '
            f'font-size="11">{_esc(fmt.format(value))}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def sparkline_svg(
    values: Sequence[float],
    *,
    width: int = 240,
    height: int = 36,
    color: str = BAR_COLOR,
    baseline_zero: bool = True,
) -> str:
    """One polyline over evenly spaced samples (pad of 2px each side)."""
    if not values:
        return ""
    lo = 0.0 if baseline_zero else min(values)
    hi = max(max(values), lo + 1e-12)
    pad = 2.0
    span_x = width - 2 * pad
    span_y = height - 2 * pad
    n = len(values)
    points = []
    for i, value in enumerate(values):
        x = pad + (span_x * i / (n - 1) if n > 1 else span_x / 2)
        frac = (value - lo) / (hi - lo)
        y = height - pad - span_y * frac
        points.append(f"{_fmt(x)},{_fmt(y)}")
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">'
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="{color}" stroke-width="1.5"/></svg>'
    )


def scatter_svg(
    points: Sequence[Tuple[float, float]],
    highlight: Optional[Sequence[bool]] = None,
    *,
    width: int = 320,
    height: int = 220,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """An x/y scatter; highlighted points draw larger in the accent color."""
    if not points:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    x1 = x1 if x1 > x0 else x0 + 1.0
    y1 = y1 if y1 > y0 else y0 + 1.0
    pad = 28.0
    span_x = width - 2 * pad
    span_y = height - 2 * pad
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img">',
        f'<rect x="{_fmt(pad)}" y="{_fmt(pad)}" width="{_fmt(span_x)}" '
        f'height="{_fmt(span_y)}" fill="none" stroke="{MUTED_COLOR}"/>',
    ]
    flagged: List[bool] = (
        list(highlight) if highlight is not None else [False] * len(points)
    )
    # muted points first so highlights draw on top
    for hot in (False, True):
        for (x, y), flag in zip(points, flagged):
            if flag != hot:
                continue
            cx = pad + span_x * (x - x0) / (x1 - x0)
            cy = height - pad - span_y * (y - y0) / (y1 - y0)
            color = ACCENT_COLOR if flag else MUTED_COLOR
            r = 4 if flag else 2.5
            parts.append(
                f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{r}" '
                f'fill="{color}"/>'
            )
    if x_label:
        parts.append(
            f'<text x="{_fmt(width / 2)}" y="{height - 6}" '
            f'text-anchor="middle" font-size="11">{_esc(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="10" y="{_fmt(height / 2)}" font-size="11" '
            f'transform="rotate(-90 10 {_fmt(height / 2)})" '
            f'text-anchor="middle">{_esc(y_label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)
