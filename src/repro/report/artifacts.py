"""One loader for every JSONL artifact the repo emits.

``analyze_latency.py`` resolved inputs and merged journeys its own way,
``run_chaos.py`` re-derived journey records from live sessions, and
every CLI that takes ``--faults`` re-implemented plan loading.  Worse,
the copies disagreed on malformed input: some paths raised a bare
``json.JSONDecodeError`` with no file context, and ad-hoc readers
skipped bad lines silently.  This module is the single shared
implementation with one explicit policy:

* **strict** (default) — a malformed line raises
  :class:`~repro.errors.ArtifactError` naming the file and line;
* **lenient** (``malformed="skip"``) — bad lines are skipped but
  *counted and returned*, so callers can surface a warning instead of
  quietly analyzing a truncated artifact.

Blank lines are tolerated everywhere (artifacts are append-journaled;
a crash can leave a trailing newline).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ArtifactError, ConfigurationError
from ..telemetry import merge_attribution
from ..telemetry.attribution import journey_record, journey_records

#: malformed-line policies :func:`read_artifact` accepts
MALFORMED_POLICIES = ("error", "skip")


def read_artifact(
    path, malformed: str = "error"
) -> Tuple[List[dict], List[int]]:
    """Load a JSONL artifact; returns ``(records, skipped line numbers)``.

    ``malformed="error"`` (default) raises :class:`ArtifactError` with
    file and line context on the first bad line; ``malformed="skip"``
    collects the 1-based line numbers of unparseable lines instead.
    Records that parse but are not JSON objects count as malformed —
    every artifact schema in this repo is a stream of objects.
    """
    if malformed not in MALFORMED_POLICIES:
        raise ValueError(
            f"malformed must be one of {MALFORMED_POLICIES}, got {malformed!r}"
        )
    records: List[dict] = []
    skipped: List[int] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path}: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not a JSON object")
            except ValueError as exc:
                if malformed == "error":
                    raise ArtifactError(
                        f"{path}:{lineno}: malformed artifact line ({exc})"
                    ) from exc
                skipped.append(lineno)
                continue
            records.append(record)
    return records, skipped


def resolve_artifact(arg, filename: str = "attribution.jsonl") -> Path:
    """Accept an artifact file or a directory holding ``filename``."""
    path = Path(arg)
    if path.is_dir():
        candidate = path / filename
        if not candidate.exists():
            raise ArtifactError(f"{path} has no {filename}")
        return candidate
    if not path.exists():
        raise ArtifactError(f"no such artifact: {path}")
    return path


def load_journeys(
    paths: Sequence, malformed: str = "error"
) -> Tuple[List[dict], List[str]]:
    """Journey records across all inputs; merged when there are several.

    Returns ``(journeys, warnings)``.  The merge is the deterministic
    campaign merge — sources sorted by label, journeys tagged with their
    source — so feeding two per-worker artifacts or two campaign outputs
    produces identical bytes regardless of argument order.
    """
    warnings: List[str] = []

    def one(path) -> List[dict]:
        records, skipped = read_artifact(path, malformed=malformed)
        if skipped:
            warnings.append(
                f"{path}: skipped {len(skipped)} malformed line(s) "
                f"(first at line {skipped[0]})"
            )
        return journey_records(records)

    if len(paths) == 1:
        return one(paths[0]), warnings
    sources = [(str(p), one(p)) for p in paths]
    return journey_records(merge_attribution(sources)), warnings


def journeys_of_session(session) -> List[dict]:
    """The completed-journey records of a live :class:`TraceSession`."""
    tracker = session.journeys
    if tracker is None:
        return []
    return [journey_record(j) for j in tracker.completed]


def load_fault_plan(path) -> str:
    """Read a fault-plan JSON file to its canonical string form.

    The canonical form is what rides in campaign-job kwargs (hashable,
    cache-key stable) — every ``--faults`` CLI flag funnels through
    here.  Raises :class:`ConfigurationError` on unreadable files or
    invalid plans, matching the error contract of the plan parser.
    """
    from ..faults import FaultPlan  # local: faults imports telemetry too

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
    return FaultPlan.from_json(text).to_json()


def load_report(path) -> dict:
    """Load a ``report.json`` (or a suite out-dir containing one)."""
    resolved = resolve_artifact(path, filename="report.json")
    try:
        report = json.loads(resolved.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ArtifactError(f"{resolved}: not valid JSON ({exc})") from exc
    if not isinstance(report, dict) or "schema" not in report:
        raise ArtifactError(f"{resolved}: not a report.json (no schema field)")
    return report


def records_of_kind(records: Iterable[dict], kind: str) -> List[dict]:
    """The records of one ``kind`` in an artifact stream, in file order."""
    return [r for r in records if r.get("kind") == kind]


def first_meta(records: Sequence[dict]) -> Optional[dict]:
    """The stream's leading ``meta`` record, wherever it is."""
    for record in records:
        if record.get("kind") == "meta":
            return record
    return None
