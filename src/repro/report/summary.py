"""Fold one suite run's artifacts into the ``repro.report/v1`` summary.

``report.json`` is the machine-readable face of a suite run and the
input to :mod:`repro.report.diff` — so its bytes must be a pure function
of (suite spec, code version, seed).  Everything folded here already
carries that guarantee upstream: merged attribution artifacts, run
tables, and Pareto streams are byte-identical at any worker count.  The
one artifact that is *not* deterministic — the kernel profiler's wall
times — contributes only its event **counts**; the timings stay in
``kernel_profile.json`` and the HTML page, which are never
byte-compared.

Record provenance per section:

* campaigns — ``campaign-<name>/attribution.jsonl`` (``end_to_end`` +
  ``stage_summary`` records, plus ``fault_window`` records bucketed
  against the journeys when the campaign injected faults) and
  ``campaign-<name>/metrics.jsonl`` (the final ``merged`` snapshot:
  occupancy histograms and ``tier.*`` hybrid-memory counters — both
  deterministic merges of per-job sim-time metrics);
* services — ``service-<name>/run_table.jsonl`` (window + repetition
  records, SLO verdict columns included);
* tunes — ``tune-<name>/pareto.jsonl`` (meta + trial records);
* kernel — ``kernel_profile.json`` (counts only).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from ..faults import time_buckets
from .artifacts import first_meta, read_artifact, records_of_kind

#: the schema identifier stamped on every report.json
REPORT_SCHEMA = "repro.report/v1"

#: end-to-end metrics carried per scenario (artifact field names)
E2E_METRICS = ("mean_ps", "min_ps", "max_ps", "p50_ps", "p95_ps", "p99_ps")

#: per-stage metrics carried per (scenario, stage)
STAGE_METRICS = ("count", "mean_ps", "p50_ps", "p95_ps", "p99_ps", "max_ps",
                 "share")

#: time slices in the fault injections-vs-latency view
FAULT_BUCKETS = 10

#: the stat suffixes a histogram expands into in a metrics snapshot
HIST_STATS = ("count", "mean", "min", "max", "p50", "p95", "p99")


def _merged_snapshot(out_dir: Path, name: str) -> dict:
    """The campaign's final ``merged`` metrics snapshot (last one wins)."""
    path = out_dir / f"campaign-{name}" / "metrics.jsonl"
    if not path.exists():
        return {}
    records, _ = read_artifact(path)
    merged: dict = {}
    for record in records:
        if record.get("kind") == "snapshot" and record.get("label") == "merged":
            merged = record.get("metrics", {})
    return merged


def _occupancy_rows(metrics: dict) -> list:
    """``occupancy.<source>.<stat>`` snapshot keys, one row per source."""
    rows: dict = {}
    for key, value in metrics.items():
        if not key.startswith("occupancy."):
            continue
        prefix, _, stat = key.rpartition(".")
        if stat not in HIST_STATS:
            continue
        rows.setdefault(prefix[len("occupancy."):], {})[stat] = value
    return [{"source": source, **stats} for source, stats in sorted(rows.items())]


def _campaign_section(out_dir: Path, entry) -> dict:
    records, _ = read_artifact(out_dir / f"campaign-{entry.name}"
                               / "attribution.jsonl")
    meta = first_meta(records) or {}
    end_to_end = [
        {"scenario": r["scenario"], "journeys": r["journeys"],
         **{m: r[m] for m in E2E_METRICS if m in r}}
        for r in sorted(records_of_kind(records, "end_to_end"),
                        key=lambda r: r["scenario"])
    ]
    stages = [
        {"scenario": r["scenario"], "stage": r["stage"],
         "stage_kind": r.get("stage_kind", ""),
         **{m: r[m] for m in STAGE_METRICS if m in r}}
        for r in sorted(records_of_kind(records, "stage_summary"),
                        key=lambda r: (r["scenario"], r["stage"]))
    ]
    windows = records_of_kind(records, "fault_window")
    journeys = records_of_kind(records, "journey")
    buckets = (
        time_buckets(windows, journeys, buckets=FAULT_BUCKETS)
        if windows and journeys else []
    )
    merged = _merged_snapshot(out_dir, entry.name)
    return {
        "name": entry.name,
        "journeys": meta.get("journeys", 0),
        "scenarios": meta.get("scenarios", []),
        "folded": bool(meta.get("folded", False)),
        "end_to_end": end_to_end,
        "stages": stages,
        "fault_buckets": buckets,
        "occupancy": _occupancy_rows(merged),
        "tier_metrics": {
            k: v for k, v in sorted(merged.items()) if k.startswith("tier.")
        },
    }


def _service_section(out_dir: Path, entry) -> dict:
    records, _ = read_artifact(out_dir / f"service-{entry.name}"
                               / "run_table.jsonl")
    meta = first_meta(records) or {}
    windows = [
        {k: v for k, v in r.items() if k != "kind"}
        for r in records_of_kind(records, "window")
    ]
    repetitions = [
        {k: v for k, v in r.items() if k != "kind"}
        for r in records_of_kind(records, "repetition")
    ]
    slo = {}
    for tenant in entry.schedule.tenants:
        if tenant.slo_p99_ms is None:
            continue
        col = f"slo_{tenant.name}"
        judged = sum(1 for w in windows if w.get(col))
        slo[tenant.name] = {
            "target_p99_ms": tenant.slo_p99_ms,
            "windows_judged": judged,
            "windows_met": sum(1 for w in windows if w.get(col) == "met"),
        }
    return {
        "name": entry.name,
        "schedule": meta.get("schedule", {}),
        "columns": meta.get("columns", []),
        "windows": windows,
        "repetitions": repetitions,
        "slo": slo,
    }


def _tune_section(out_dir: Path, entry) -> dict:
    records, _ = read_artifact(out_dir / f"tune-{entry.name}" / "pareto.jsonl")
    meta = first_meta(records) or {}
    trials = [
        {k: v for k, v in r.items() if k not in ("kind", "schema")}
        for r in records_of_kind(records, "trial")
    ]
    return {
        "name": entry.name,
        "workload": meta.get("workload"),
        "objectives": meta.get("objectives", []),
        "trials_run": meta.get("trials", 0),
        "front_size": meta.get("front_size", 0),
        "winner": meta.get("winner"),
        "trials": trials,
    }


def _kernel_section(out_dir: Path) -> Optional[dict]:
    """The deterministic slice of the kernel profile, if one was taken.

    Wall times are excluded by construction: only event counts — a pure
    function of the profiled experiment — may enter report.json.
    """
    path = out_dir / "kernel_profile.json"
    if not path.exists():
        return None
    profile = json.loads(path.read_text(encoding="utf-8"))
    return {
        "experiment": profile.get("experiment"),
        "events": profile.get("events", 0),
        "runs": profile.get("runs", 0),
        "counts": profile.get("counts", {}),
    }


def build_report(out_dir, spec) -> dict:
    """Fold a finished suite run's artifacts into the report dict."""
    out_dir = Path(out_dir)
    return {
        "schema": REPORT_SCHEMA,
        "suite": spec.name,
        "seed": spec.seed,
        "campaigns": [_campaign_section(out_dir, e) for e in spec.campaigns],
        "services": [_service_section(out_dir, e) for e in spec.services],
        "tunes": [_tune_section(out_dir, e) for e in spec.tunes],
        "kernel": _kernel_section(out_dir),
    }


def write_report_json(path, report: dict) -> None:
    """Write the canonical form: sorted keys, 2-space indent, newline."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
