"""Compare two ``report.json`` files and emit a regression verdict.

The diff walks every comparable metric the reports share — campaign
end-to-end and per-stage latencies, service window/repetition counts
and percentiles, tune front shape, kernel event counts — and grades
each relative delta against per-metric tolerances:

* ``|new - base| / max(|base|, eps) <= warn`` → **PASS** (a delta
  landing exactly on the tolerance passes — tolerances are inclusive);
* ``<= fail`` → **WARN**;
* ``> fail`` → **FAIL**.

Structural asymmetries grade without arithmetic: a metric present in
the baseline but missing from the new run is a **FAIL** (a regression
gate must not pass because the evidence disappeared), a metric only the
new run has is a **WARN** (new coverage, nothing to regress against),
and a value that is absent or NaN on one side is a **WARN** on that
metric.  Absent or NaN on *both* sides compares as equal — nothing
measurable changed.

Percentiles are budget-matched in the same spirit as the tuner's
deepest-common-rung rule: when the two sides measured a different
sample count (journeys, completions), their percentile deltas probe
different tail depths, so those findings are capped at **WARN** with an
explanatory note — the sample-count metrics themselves still grade
normally and catch the drift.

The overall verdict is the worst finding, findings sort by severity
then key, and everything is a pure function of the two reports plus the
tolerance table — two byte-identical reports always PASS with zero
findings, at any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

#: verdicts, mildest first (index = severity)
VERDICTS = ("PASS", "WARN", "FAIL")

#: relative-delta tolerances per metric class: ``(warn_above, fail_above)``
#: — deltas at or below ``warn_above`` pass, at or below ``fail_above``
#: warn, beyond that fail.  Counts are exact by default: any drift in a
#: deterministic artifact warrants at least a WARN.
DEFAULT_TOLERANCES: Dict[str, Tuple[float, float]] = {
    "latency": (0.02, 0.10),    # *_ps / *_ms means and percentiles
    "share": (0.02, 0.10),      # stage shares, rates, occupancy
    "count": (0.0, 0.02),       # journeys, events, offered/completed/shed
}

#: denominator floor for relative deltas (a zero baseline would divide
#: by zero; against ~picosecond-scale metrics 1e-9 is effectively exact)
EPS = 1e-9

#: metric names graded as percentiles (budget-capped when samples differ)
_PERCENTILE_MARKERS = ("p50", "p95", "p99", "max")


@dataclass(frozen=True)
class DiffFinding:
    """One graded metric comparison."""

    key: str                      # e.g. "campaign/sweep/table3/p99_ps"
    verdict: str
    baseline: Optional[float]
    new: Optional[float]
    delta: Optional[float]        # relative; None for structural findings
    note: str = ""

    def to_record(self) -> dict:
        return {
            "key": self.key, "verdict": self.verdict,
            "baseline": self.baseline, "new": self.new,
            "delta": self.delta, "note": self.note,
        }


@dataclass
class DiffResult:
    """The full comparison: worst verdict plus every finding."""

    verdict: str
    findings: List[DiffFinding]
    compared: int                 # metrics graded (incl. clean passes)

    @property
    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for finding in self.findings:
            out[finding.verdict] += 1
        return out

    def to_record(self) -> dict:
        return {
            "verdict": self.verdict,
            "compared": self.compared,
            "counts": self.counts,
            "findings": [f.to_record() for f in self.findings],
        }


class _Metric:
    """One comparable value: its class, and the sample budget behind it."""

    __slots__ = ("value", "klass", "samples")

    def __init__(self, value, klass: str, samples: Optional[float] = None):
        self.value = value
        self.klass = klass
        self.samples = samples


def _is_absent(value) -> bool:
    if value is None:
        return True
    return isinstance(value, float) and math.isnan(value)


def _metric_class(name: str) -> str:
    if name.endswith("_ps") or name.endswith("_ms"):
        return "latency"
    if "share" in name or "rate" in name or "occupancy" in name:
        return "share"
    return "count"


def _is_percentile(name: str) -> bool:
    return any(marker in name for marker in _PERCENTILE_MARKERS)


def _index(report: Mapping) -> Dict[str, _Metric]:
    """Flatten a report into ``key -> metric`` for keywise comparison."""
    out: Dict[str, _Metric] = {}

    def put(key: str, value, samples=None):
        name = key.rsplit("/", 1)[-1]
        out[key] = _Metric(value, _metric_class(name), samples)

    for campaign in report.get("campaigns", []):
        base = f"campaign/{campaign['name']}"
        put(f"{base}/journeys", campaign.get("journeys"))
        for row in campaign.get("end_to_end", []):
            prefix = f"{base}/{row['scenario']}"
            n = row.get("journeys")
            put(f"{prefix}/journeys", n)
            for metric in ("mean_ps", "p50_ps", "p95_ps", "p99_ps", "max_ps"):
                put(f"{prefix}/{metric}", row.get(metric), samples=n)
        for row in campaign.get("stages", []):
            prefix = f"{base}/{row['scenario']}/stage/{row['stage']}"
            n = row.get("count")
            put(f"{prefix}/count", n)
            for metric in ("mean_ps", "p99_ps", "share"):
                put(f"{prefix}/{metric}", row.get(metric), samples=n)

    for service in report.get("services", []):
        base = f"service/{service['name']}"
        for rep in service.get("repetitions", []):
            prefix = f"{base}/rep{rep.get('repetition')}"
            for metric in ("offered", "completed", "shed", "failed",
                           "overloaded_windows", "slo_missed_windows"):
                if metric in rep:
                    put(f"{prefix}/{metric}", rep.get(metric))
        for window in service.get("windows", []):
            prefix = (f"{base}/rep{window.get('repetition')}"
                      f"/w{window.get('window')}")
            n = window.get("completed")
            put(f"{prefix}/completed", n)
            put(f"{prefix}/shed", window.get("shed"))
            for metric in ("latency_p50_ms", "latency_p99_ms",
                           "queue_delay_mean_ms", "occupancy_mean"):
                put(f"{prefix}/{metric}", window.get(metric), samples=n)
        for tenant, row in sorted(service.get("slo", {}).items()):
            prefix = f"{base}/slo/{tenant}"
            put(f"{prefix}/windows_met", row.get("windows_met"))
            put(f"{prefix}/windows_judged", row.get("windows_judged"))

    for tune in report.get("tunes", []):
        base = f"tune/{tune['name']}"
        put(f"{base}/trials_run", tune.get("trials_run"))
        put(f"{base}/front_size", tune.get("front_size"))

    kernel = report.get("kernel")
    if kernel:
        put("kernel/events", kernel.get("events"))
        for key, count in sorted(kernel.get("counts", {}).items()):
            put(f"kernel/counts/{key}", count)
    return out


def _winner_keys(report: Mapping) -> Dict[str, Optional[str]]:
    return {
        f"tune/{t['name']}/winner": t.get("winner")
        for t in report.get("tunes", [])
    }


def diff_reports(
    baseline: Mapping,
    new: Mapping,
    tolerances: Optional[Mapping[str, Tuple[float, float]]] = None,
) -> DiffResult:
    """Grade ``new`` against ``baseline``; see the module docstring."""
    tol = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    a, b = _index(baseline), _index(new)
    findings: List[DiffFinding] = []
    compared = 0

    for key in sorted(set(a) | set(b)):
        name = key.rsplit("/", 1)[-1]
        if key not in b:
            findings.append(DiffFinding(
                key, "FAIL", _num(a[key].value), None, None,
                note="metric missing from the new run",
            ))
            continue
        if key not in a:
            findings.append(DiffFinding(
                key, "WARN", None, _num(b[key].value), None,
                note="metric only in the new run (no baseline)",
            ))
            continue
        ma, mb = a[key], b[key]
        absent_a, absent_b = _is_absent(ma.value), _is_absent(mb.value)
        if absent_a and absent_b:
            continue  # nothing measurable on either side
        compared += 1
        if absent_a or absent_b:
            side = "baseline" if absent_a else "new run"
            findings.append(DiffFinding(
                key, "WARN", _num(ma.value), _num(mb.value), None,
                note=f"value absent or NaN in the {side}",
            ))
            continue
        va, vb = float(ma.value), float(mb.value)
        delta = abs(vb - va) / max(abs(va), EPS)
        warn_tol, fail_tol = tol.get(ma.klass, tol["count"])
        if delta <= warn_tol:
            continue  # clean pass: not a finding
        verdict = "WARN" if delta <= fail_tol else "FAIL"
        note = ""
        if (verdict == "FAIL" and _is_percentile(name)
                and ma.samples is not None and mb.samples is not None
                and ma.samples != mb.samples):
            verdict = "WARN"
            note = (f"budget mismatch ({ma.samples:g} vs {mb.samples:g} "
                    "samples): percentile deltas capped at WARN")
        findings.append(DiffFinding(key, verdict, va, vb, delta, note=note))

    wa, wb = _winner_keys(baseline), _winner_keys(new)
    for key in sorted(set(wa) | set(wb)):
        compared += 1
        if wa.get(key) != wb.get(key):
            findings.append(DiffFinding(
                key, "WARN", None, None, None,
                note=f"winner changed: {wa.get(key)!r} -> {wb.get(key)!r}",
            ))

    findings.sort(key=lambda f: (-VERDICTS.index(f.verdict), f.key))
    worst = max(
        (f.verdict for f in findings), key=VERDICTS.index, default="PASS"
    )
    return DiffResult(worst, findings, compared)


def _num(value) -> Optional[float]:
    if value is None:
        return None
    try:
        value = float(value)
    except (TypeError, ValueError):
        return None
    return None if math.isnan(value) else value


def render_diff(result: DiffResult, limit: int = 40) -> str:
    """The verdict and findings as fixed-width terminal text."""
    counts = result.counts
    lines = [
        f"verdict: {result.verdict} "
        f"({result.compared} metrics compared; "
        f"{counts['FAIL']} fail, {counts['WARN']} warn)",
    ]
    shown = result.findings[:limit]
    if shown:
        width = max(len(f.key) for f in shown)
        for f in shown:
            if f.delta is not None:
                detail = (f"{f.baseline:.6g} -> {f.new:.6g} "
                          f"({f.delta:+.2%})")
            else:
                detail = f.note
            suffix = f"  [{f.note}]" if f.note and f.delta is not None else ""
            lines.append(f"  {f.verdict:<4}  {f.key:<{width}}  {detail}{suffix}")
    hidden = len(result.findings) - len(shown)
    if hidden > 0:
        lines.append(f"  ... {hidden} more finding(s)")
    return "\n".join(lines)
