"""Render a suite report as one self-contained HTML page.

The page is generated from the same deterministic report dict that
becomes ``report.json`` (plus, optionally, the wall-time kernel profile
— which may vary run to run and is exactly why it is *not* part of
report.json).  Everything is inline: one ``<style>`` block, hand-built
SVG charts, no scripts, no fonts, no network requests.  Opening the
file from disk anywhere shows the full report.

Sections, in order: suite header, campaign latency breakdowns (stage
tables + share bars + end-to-end grid), fault injections-vs-latency
buckets, service run tables (offered/achieved sparklines, SLO verdict
coloring), tune Pareto scatter + trial grid, kernel hotspots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .svg import ACCENT_COLOR, BAR_COLOR, hbar_svg, scatter_svg, sparkline_svg

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; padding: 0 1em; color: #1c2530; }
h1 { border-bottom: 2px solid #4878a8; padding-bottom: .2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #d5dbe2; }
h3 { margin-bottom: .4em; }
table { border-collapse: collapse; margin: .6em 0 1.2em; }
th, td { border: 1px solid #d5dbe2; padding: .25em .6em;
         text-align: right; font-variant-numeric: tabular-nums; }
th { background: #eef2f6; }
td.l, th.l { text-align: left; }
td.met { background: #e4f2e4; }
td.missed { background: #f6dddd; }
.muted { color: #68758a; }
.chart { margin: .4em 0 1em; }
.kv { display: inline-block; margin-right: 1.6em; }
.kv b { font-variant-numeric: tabular-nums; }
"""


def _esc(text) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _ns(ps) -> str:
    return f"{ps / 1000:.2f}"


def _table(headers: Sequence[str], rows: Sequence[Sequence],
           left: int = 1) -> str:
    """A plain table; the first ``left`` columns are left-aligned."""
    def cells(tag: str, values, classes=None) -> str:
        out = []
        for i, value in enumerate(values):
            klass = [] if i >= left else ["l"]
            if classes and classes[i]:
                klass.append(classes[i])
            attr = f' class="{" ".join(klass)}"' if klass else ""
            out.append(f"<{tag}{attr}>{_esc(value)}</{tag}>")
        return "".join(out)

    body = []
    for row in rows:
        classes = [
            str(v) if str(v) in ("met", "missed") else "" for v in row
        ]
        body.append(f"<tr>{cells('td', row, classes)}</tr>")
    return (f"<table><thead><tr>{cells('th', headers)}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _campaign_html(campaign: dict) -> List[str]:
    parts = [f"<h2>Campaign: {_esc(campaign['name'])}</h2>"]
    parts.append(
        f'<p class="muted">{campaign["journeys"]} journeys across '
        f'{len(campaign["scenarios"])} scenario(s)'
        + (" (folded summaries)" if campaign.get("folded") else "") + "</p>"
    )
    if campaign["end_to_end"]:
        parts.append("<h3>End-to-end latency (ns)</h3>")
        parts.append(_table(
            ["Scenario", "Journeys", "Mean", "p50", "p95", "p99", "Max"],
            [
                [r["scenario"], r["journeys"], _ns(r["mean_ps"]),
                 _ns(r["p50_ps"]), _ns(r["p95_ps"]), _ns(r["p99_ps"]),
                 _ns(r["max_ps"])]
                for r in campaign["end_to_end"]
            ],
        ))
    scenarios = sorted({r["scenario"] for r in campaign["stages"]})
    for scenario in scenarios:
        stages = [r for r in campaign["stages"] if r["scenario"] == scenario]
        parts.append(f"<h3>Stage breakdown: {_esc(scenario)}</h3>")
        parts.append(_table(
            ["Stage", "Kind", "Count", "Mean (ns)", "p50", "p95", "p99",
             "Max", "Share"],
            [
                [r["stage"], r["stage_kind"], r["count"], _ns(r["mean_ps"]),
                 _ns(r["p50_ps"]), _ns(r["p95_ps"]), _ns(r["p99_ps"]),
                 _ns(r["max_ps"]), f"{r['share']:.1%}"]
                for r in stages
            ],
            left=2,
        ))
        share_rows = [(r["stage"], r["share"]) for r in stages]
        parts.append(f'<div class="chart">{hbar_svg(share_rows)}</div>')
    if campaign.get("occupancy"):
        parts.append("<h3>Occupancy histograms</h3>")
        parts.append(_table(
            ["Source", "Samples", "Mean", "Min", "p50", "p95", "p99", "Max"],
            [
                [r["source"], int(r.get("count", 0)),
                 f"{r.get('mean', 0.0):.2f}", f"{r.get('min', 0.0):.0f}",
                 f"{r.get('p50', 0.0):.0f}", f"{r.get('p95', 0.0):.0f}",
                 f"{r.get('p99', 0.0):.0f}", f"{r.get('max', 0.0):.0f}"]
                for r in campaign["occupancy"]
            ],
        ))
        peak = max(r.get("max", 0.0) for r in campaign["occupancy"]) or 1.0
        parts.append('<div class="chart">' + hbar_svg(
            [(r["source"], r.get("mean", 0.0) / peak)
             for r in campaign["occupancy"]],
            color=BAR_COLOR,
        ) + "</div>")
    if campaign.get("tier_metrics"):
        parts.append("<h3>Hybrid-memory tiering</h3>")
        parts.append(_table(
            ["Metric", "Value"],
            [[k, f"{v:g}"] for k, v in sorted(
                campaign["tier_metrics"].items())],
        ))
    if campaign["fault_buckets"]:
        parts.append("<h3>Fault injections vs latency over sim time</h3>")
        buckets = campaign["fault_buckets"]
        parts.append(_table(
            ["Bucket", "Start (us)", "End (us)", "Injections", "Open",
             "Journeys", "Faulted", "Clean mean (us)", "Fault mean (us)"],
            [
                [b["bucket"], f"{b['start_ps'] / 1e6:.0f}",
                 f"{b['end_ps'] / 1e6:.0f}", b["injections"],
                 b["open_windows"], b["journeys"], b["fault_journeys"],
                 f"{b['clean_mean_ps'] / 1e6:.1f}",
                 f"{b['fault_mean_ps'] / 1e6:.1f}"]
                for b in buckets
            ],
        ))
        parts.append(
            '<div class="chart">injections '
            + sparkline_svg([b["injections"] for b in buckets],
                            color=ACCENT_COLOR)
            + " fault mean "
            + sparkline_svg([b["fault_mean_ps"] for b in buckets])
            + "</div>"
        )
    return parts


def _service_html(service: dict) -> List[str]:
    parts = [f"<h2>Service: {_esc(service['name'])}</h2>"]
    schedule = service.get("schedule", {})
    parts.append(
        f'<p class="muted">schedule {_esc(schedule.get("name", "?"))}: '
        f'{schedule.get("servers", "?")} server(s), '
        f'queue&le;{schedule.get("queue_limit", "?")}, '
        f'{len(service["repetitions"])} repetition(s)</p>'
    )
    if service["repetitions"]:
        headers = ["Rep", "Offered", "Completed", "Shed", "Failed",
                   "Overloaded windows"]
        has_slo = any("slo_missed_windows" in r for r in service["repetitions"])
        if has_slo:
            headers.append("SLO-missed windows")
        parts.append(_table(headers, [
            [r["repetition"], r["offered"], r["completed"], r["shed"],
             r["failed"], r["overloaded_windows"]]
            + ([r.get("slo_missed_windows", 0)] if has_slo else [])
            for r in service["repetitions"]
        ]))
    for tenant, row in sorted(service.get("slo", {}).items()):
        parts.append(
            f'<p><span class="kv">SLO <b>{_esc(tenant)}</b>: '
            f'{row["windows_met"]}/{row["windows_judged"]} windows met '
            f'(p99 &le; {row["target_p99_ms"]:g} ms)</span></p>'
        )
    reps = sorted({w["repetition"] for w in service["windows"]})
    for rep in reps:
        mine = [w for w in service["windows"] if w["repetition"] == rep]
        parts.append(f"<h3>Windows, repetition {rep}</h3>")
        parts.append(
            '<div class="chart">offered '
            + sparkline_svg([w["offered_rps"] for w in mine])
            + " achieved "
            + sparkline_svg([w["achieved_rps"] for w in mine])
            + " queue ms "
            + sparkline_svg([w["queue_delay_mean_ms"] for w in mine],
                            color=ACCENT_COLOR)
            + "</div>"
        )
        slo_cols = [c for c in service.get("columns", [])
                    if c.startswith("slo_")]
        headers = (["W", "Offered", "Completed", "Shed", "p50 ms", "p99 ms",
                    "Occupancy"] + [c[4:] for c in slo_cols])
        parts.append(_table(headers, [
            [w["window"], w["offered"], w["completed"], w["shed"],
             f"{w['latency_p50_ms']:.3f}", f"{w['latency_p99_ms']:.3f}",
             f"{w['occupancy_mean']:.2f}"]
            + [w.get(c, "") for c in slo_cols]
            for w in mine
        ], left=0))
    return parts


def _tune_html(tune: dict) -> List[str]:
    parts = [f"<h2>Tune: {_esc(tune['name'])}</h2>"]
    objectives = tune.get("objectives", [])
    names = ", ".join(
        f"{o['metric']} ({o['goal']})" for o in objectives
    )
    parts.append(
        f'<p class="muted">workload {_esc(tune.get("workload"))}; '
        f'objectives: {_esc(names)}; {tune["trials_run"]} trial(s), '
        f'front size {tune["front_size"]}; '
        f'winner <code>{_esc(tune.get("winner"))}</code></p>'
    )
    trials = [t for t in tune.get("trials", []) if t.get("objectives")]
    if len(objectives) >= 2 and trials:
        mx, my = objectives[0]["metric"], objectives[1]["metric"]
        pts = [(t["objectives"][mx], t["objectives"][my]) for t in trials]
        hot = [not t.get("dominated", True) for t in trials]
        parts.append(
            f'<div class="chart">'
            f'{scatter_svg(pts, hot, x_label=mx, y_label=my)}</div>'
        )
    if trials:
        metrics = sorted(trials[0]["objectives"])
        parts.append(_table(
            ["Config", "Status", "Rung", "Samples"] + metrics + ["Front"],
            [
                [t["key"], t["status"], t["rung"], t["samples"]]
                + [f"{t['objectives'].get(m, float('nan')):.4g}"
                   for m in metrics]
                + ["front" if not t.get("dominated", True) else ""]
                for t in tune["trials"] if t.get("objectives")
            ],
        ))
    return parts


def _kernel_html(kernel: Optional[dict],
                 profile: Optional[dict]) -> List[str]:
    if not kernel and not profile:
        return []
    parts = ["<h2>Kernel hotspots</h2>"]
    source = profile or kernel or {}
    parts.append(
        f'<p class="muted">profiled experiment '
        f'<code>{_esc(source.get("experiment"))}</code>: '
        f'{source.get("events", 0)} events over '
        f'{source.get("runs", 0)} run() call(s)</p>'
    )
    if profile and profile.get("hotspots"):
        rows = profile["hotspots"]
        parts.append(_table(
            ["Event handler", "Count", "Wall (ms)", "Mean (us)", "Share"],
            [
                [r["key"], r["count"], f"{r['wall_s'] * 1e3:.2f}",
                 f"{r['mean_us']:.2f}", f"{r['wall_share']:.1%}"]
                for r in rows
            ],
        ))
        parts.append('<div class="chart">' + hbar_svg(
            [(r["key"], r["wall_share"]) for r in rows[:12]],
            color=BAR_COLOR,
        ) + "</div>")
        parts.append(
            '<p class="muted">Wall times come from this run\'s '
            "kernel_profile.json and vary machine to machine; only the "
            "event counts below are part of report.json.</p>"
        )
    counts = (kernel or {}).get("counts") or (profile or {}).get("counts", {})
    if counts:
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        parts.append(_table(
            ["Event handler", "Count"],
            [[key, count] for key, count in ordered],
        ))
    return parts


def render_html(report: dict, profile: Optional[dict] = None) -> str:
    """The whole suite report as one standalone HTML document."""
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>Suite report: {_esc(report.get('suite'))}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Suite report: {_esc(report.get('suite'))}</h1>",
        f'<p class="muted">seed {report.get("seed")}; '
        f'{len(report.get("campaigns", []))} campaign(s), '
        f'{len(report.get("services", []))} service(s), '
        f'{len(report.get("tunes", []))} tune(s)</p>',
    ]
    for campaign in report.get("campaigns", []):
        parts.extend(_campaign_html(campaign))
    for service in report.get("services", []):
        parts.extend(_service_html(service))
    for tune in report.get("tunes", []):
        parts.extend(_tune_html(tune))
    parts.extend(_kernel_html(report.get("kernel"), profile))
    parts.append("</body></html>")
    return "\n".join(parts)
