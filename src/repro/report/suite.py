"""The declarative ``repro.suite/v1`` spec: one file, one named run.

A suite bundles what previously took several CLI invocations — campaign
matrices, fault plans, arrival schedules, tune specs — into a single
JSON document that one ``scripts/run_suite.py`` call executes through
the campaign engine and folds into one report.  Example::

    {
      "schema": "repro.suite/v1",
      "name": "nightly",
      "seed": 0,
      "campaigns": [
        {"name": "paper", "only": ["table1", "table3"]},
        {"name": "sweep",
         "scenarios": [{"experiment": "table3", "axes": {"samples": [8, 16]}}],
         "faults": "faultplans/ber.json"}
      ],
      "services": [
        {"name": "slo", "schedule": "schedules/slo_mix.json",
         "repetitions": 2, "calib_samples": 8}
      ],
      "tunes": [
        {"name": "buffer", "spec": "tunespecs/buffer_latency.json"}
      ],
      "kernel_profile": {"experiment": "table3", "axes": {"samples": 8}}
    }

``schedule``/``spec``/``faults`` values may be inline objects or paths;
paths resolve relative to the suite file, so a spec directory is
relocatable.  Section entry names become artifact directory names
(``campaign-paper/``, ``service-slo/``, ``tune-buffer/``) and must be
unique within their section.

``kernel_profile`` controls the sim-kernel hotspot pass: omit it for
the default (profile the suite's first campaign scenario, or a small
``table3`` when there are no campaigns), set it to ``false`` to skip
profiling, or name an experiment explicitly.  The profile's wall times
are never part of ``report.json`` — see :mod:`repro.report.summary`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..campaign import ALIASES, ScenarioMatrix, experiment_names, get_experiment
from ..errors import ConfigurationError
from ..service import ArrivalSchedule
from ..tune import TuneSpec
from .artifacts import load_fault_plan

#: the schema identifier a suite spec must carry
SUITE_SCHEMA = "repro.suite/v1"

_ENTRY_NAME_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_-")


def _check_entry_name(section: str, name) -> str:
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"{section} entry needs a name")
    if set(name.lower()) - _ENTRY_NAME_OK or name != name.lower():
        raise ConfigurationError(
            f"{section} entry {name!r}: names are lowercase "
            "letters/digits/_/- (they become directory names)"
        )
    return name


def _load_inline_or_path(value, base_dir: Optional[Path], what: str) -> Tuple[dict, Optional[Path]]:
    """An inline object, or a JSON file path resolved against the spec."""
    if isinstance(value, dict):
        return value, None
    if isinstance(value, str):
        path = Path(value)
        if base_dir is not None and not path.is_absolute():
            path = base_dir / path
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read {what} {value!r}: {exc}") from exc
        try:
            loaded = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"{what} {value!r} is not valid JSON: {exc}") from exc
        if not isinstance(loaded, dict):
            raise ConfigurationError(f"{what} {value!r} must be a JSON object")
        return loaded, path
    raise ConfigurationError(f"{what} must be an inline object or a path string")


def _load_faults(value, base_dir: Optional[Path]) -> Optional[str]:
    """A fault plan to its canonical JSON string (inline or path)."""
    if value is None:
        return None
    if isinstance(value, str):
        path = Path(value)
        if base_dir is not None and not path.is_absolute():
            path = base_dir / path
        return load_fault_plan(path)
    if isinstance(value, dict):
        from ..faults import FaultPlan  # local: faults imports telemetry too

        return FaultPlan.from_json(json.dumps(value)).to_json()
    raise ConfigurationError("faults must be an inline plan object or a path string")


@dataclass(frozen=True)
class CampaignEntry:
    """One campaign: a paper subset or an explicit scenario matrix."""

    name: str
    only: Optional[Tuple[str, ...]] = None
    scenarios: Tuple[dict, ...] = ()
    faults: Optional[str] = None
    fold_attribution: bool = False

    def matrix(self, seed: int) -> ScenarioMatrix:
        """Expandable matrix for this entry under the suite seed."""
        if self.scenarios:
            matrix = ScenarioMatrix(base_seed=seed)
            for scenario in self.scenarios:
                matrix.add(scenario["experiment"], **scenario.get("axes", {}))
            return matrix
        return ScenarioMatrix.paper(only=list(self.only) if self.only else None,
                                    seed=seed)


@dataclass(frozen=True)
class ServiceEntry:
    """One open-loop service run."""

    name: str
    schedule: ArrivalSchedule
    repetitions: int = 1
    calib_samples: int = 24
    faults: Optional[str] = None


@dataclass(frozen=True)
class TuneEntry:
    """One tuning search."""

    name: str
    spec: TuneSpec
    faults: Optional[str] = None


@dataclass(frozen=True)
class SuiteSpec:
    """A validated suite: everything one report run needs."""

    name: str
    seed: int = 0
    campaigns: Tuple[CampaignEntry, ...] = ()
    services: Tuple[ServiceEntry, ...] = ()
    tunes: Tuple[TuneEntry, ...] = ()
    #: ``None`` → default pass, ``False`` → disabled, dict → explicit job
    kernel_profile: Optional[object] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("suite needs a name")
        if not (self.campaigns or self.services or self.tunes):
            raise ConfigurationError(
                "suite declares nothing to run (campaigns/services/tunes)"
            )

    def profile_job(self) -> Optional[Tuple[str, Dict, int]]:
        """The ``(experiment, kwargs, seed)`` the kernel-profile pass runs.

        ``None`` when profiling is disabled.  The default is the first
        job of the first campaign (the suite's own workload profiles the
        kernel), falling back to a small ``table3`` when the suite has
        no campaigns.
        """
        if self.kernel_profile is False:
            return None
        if isinstance(self.kernel_profile, dict):
            experiment = self.kernel_profile["experiment"]
            axes = dict(self.kernel_profile.get("axes", {}))
            return experiment, axes, self.seed
        if self.campaigns:
            job = self.campaigns[0].matrix(self.seed).expand()[0]
            return job.experiment, job.kwargs_dict, job.seed
        return "table3", {"samples": 8}, self.seed

    @staticmethod
    def from_dict(spec: Dict, base_dir=None) -> "SuiteSpec":
        if not isinstance(spec, dict):
            raise ConfigurationError("suite spec must be a JSON object")
        if spec.get("schema") != SUITE_SCHEMA:
            raise ConfigurationError(
                f"suite spec must declare schema {SUITE_SCHEMA!r} "
                f"(got {spec.get('schema')!r})"
            )
        known = {"schema", "name", "seed", "campaigns", "services", "tunes",
                 "kernel_profile"}
        unknown = set(spec) - known
        if unknown:
            raise ConfigurationError(
                f"unknown suite fields: {', '.join(sorted(unknown))}"
            )
        base = Path(base_dir) if base_dir is not None else None
        seed = spec.get("seed", 0)
        if not isinstance(seed, int):
            raise ConfigurationError("suite seed must be an integer")

        campaigns = tuple(
            _campaign_entry(entry, base)
            for entry in _entries(spec, "campaigns")
        )
        services = tuple(
            _service_entry(entry, base) for entry in _entries(spec, "services")
        )
        tunes = tuple(
            _tune_entry(entry, base) for entry in _entries(spec, "tunes")
        )
        for section, entries in (("campaigns", campaigns),
                                 ("services", services), ("tunes", tunes)):
            names = [e.name for e in entries]
            if len(set(names)) != len(names):
                raise ConfigurationError(f"{section} entry names must be unique")

        kernel_profile = spec.get("kernel_profile")
        if kernel_profile not in (None, False) and not isinstance(kernel_profile, dict):
            raise ConfigurationError(
                "kernel_profile must be false, an object, or absent"
            )
        if isinstance(kernel_profile, dict):
            unknown = set(kernel_profile) - {"experiment", "axes"}
            if unknown:
                raise ConfigurationError(
                    f"unknown kernel_profile fields: {', '.join(sorted(unknown))}"
                )
            experiment = kernel_profile.get("experiment")
            if experiment not in experiment_names():
                raise ConfigurationError(
                    f"kernel_profile experiment {experiment!r} is unknown"
                )
        return SuiteSpec(
            name=_check_entry_name("suite", spec.get("name")),
            seed=seed,
            campaigns=campaigns,
            services=services,
            tunes=tunes,
            kernel_profile=kernel_profile,
        )

    @staticmethod
    def from_json(text: str, base_dir=None) -> "SuiteSpec":
        try:
            spec = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"suite spec is not valid JSON: {exc}") from exc
        return SuiteSpec.from_dict(spec, base_dir=base_dir)

    @staticmethod
    def load(path) -> "SuiteSpec":
        """Load a suite file; relative inner paths resolve beside it."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(f"cannot read suite spec {path}: {exc}") from exc
        return SuiteSpec.from_json(text, base_dir=path.parent)


def _entries(spec: Dict, section: str) -> List[dict]:
    entries = spec.get(section, [])
    if not isinstance(entries, list) or any(
        not isinstance(e, dict) for e in entries
    ):
        raise ConfigurationError(f"{section} must be a list of objects")
    return entries


def _campaign_entry(entry: dict, base: Optional[Path]) -> CampaignEntry:
    unknown = set(entry) - {"name", "only", "scenarios", "faults",
                            "fold_attribution"}
    if unknown:
        raise ConfigurationError(
            f"unknown campaign fields: {', '.join(sorted(unknown))}"
        )
    name = _check_entry_name("campaigns", entry.get("name"))
    only = entry.get("only")
    scenarios = entry.get("scenarios")
    if (only is None) == (scenarios is None):
        raise ConfigurationError(
            f"campaign {name!r}: declare exactly one of 'only' or 'scenarios'"
        )
    if only is not None:
        known = experiment_names() + sorted(ALIASES)
        bad = [n for n in only if n not in known]
        if bad:
            raise ConfigurationError(
                f"campaign {name!r}: unknown experiments {', '.join(bad)}"
            )
        only = tuple(ALIASES.get(n, n) for n in only)
    if scenarios is not None:
        for scenario in scenarios:
            if not isinstance(scenario, dict) or "experiment" not in scenario:
                raise ConfigurationError(
                    f"campaign {name!r}: each scenario needs an 'experiment'"
                )
            get_experiment(scenario["experiment"])  # raises on unknown
    return CampaignEntry(
        name=name,
        only=only,
        scenarios=tuple(scenarios or ()),
        faults=_load_faults(entry.get("faults"), base),
        fold_attribution=bool(entry.get("fold_attribution", False)),
    )


def _service_entry(entry: dict, base: Optional[Path]) -> ServiceEntry:
    unknown = set(entry) - {"name", "schedule", "repetitions", "calib_samples",
                            "faults"}
    if unknown:
        raise ConfigurationError(
            f"unknown service fields: {', '.join(sorted(unknown))}"
        )
    name = _check_entry_name("services", entry.get("name"))
    if "schedule" not in entry:
        raise ConfigurationError(f"service {name!r}: needs a schedule")
    loaded, _ = _load_inline_or_path(entry["schedule"], base, "schedule")
    repetitions = entry.get("repetitions", 1)
    calib_samples = entry.get("calib_samples", 24)
    if not isinstance(repetitions, int) or repetitions < 1:
        raise ConfigurationError(f"service {name!r}: repetitions must be >= 1")
    if not isinstance(calib_samples, int) or calib_samples < 1:
        raise ConfigurationError(f"service {name!r}: calib_samples must be >= 1")
    return ServiceEntry(
        name=name,
        schedule=ArrivalSchedule.from_dict(loaded),
        repetitions=repetitions,
        calib_samples=calib_samples,
        faults=_load_faults(entry.get("faults"), base),
    )


def _tune_entry(entry: dict, base: Optional[Path]) -> TuneEntry:
    unknown = set(entry) - {"name", "spec", "faults"}
    if unknown:
        raise ConfigurationError(
            f"unknown tune fields: {', '.join(sorted(unknown))}"
        )
    name = _check_entry_name("tunes", entry.get("name"))
    if "spec" not in entry:
        raise ConfigurationError(f"tune {name!r}: needs a spec")
    loaded, _ = _load_inline_or_path(entry["spec"], base, "tune spec")
    return TuneEntry(
        name=name,
        spec=TuneSpec.from_json(json.dumps(loaded)),
        faults=_load_faults(entry.get("faults"), base),
    )
