"""Execute a :class:`~repro.report.suite.SuiteSpec` end to end.

The runner is deliberately thin: every section reuses the engine that
its standalone CLI uses — campaigns through
:class:`~repro.campaign.CampaignRunner`, services through
:class:`~repro.service.ServiceDriver`, tunes through
:class:`~repro.tune.TuneDriver` — so a suite run is the same cached,
resumable, worker-count-invariant execution, just orchestrated from one
spec and folded into one report.

Output layout under ``out_dir``::

    campaign-<name>/   experiments.md, manifest.jsonl, metrics.jsonl,
                       attribution.jsonl
    service-<name>/    run_table.csv/.jsonl, metrics.jsonl, ...
    tune-<name>/       pareto.jsonl, tune_report.csv, ...
    kernel_profile.json   wall-time hotspots (non-deterministic; never
                          folded into report.json)
    report.json        the deterministic ``repro.report/v1`` summary
    report.html        the same data as one self-contained page

The kernel-profile pass runs **in the parent process** (the profiler is
a process-global), so its artifact exists at any ``--jobs`` and the
event *counts* embedded in ``report.json`` stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..campaign import CampaignRunner, apply_fault_plan, get_experiment
from ..sim import profiled, write_profile
from ..tune import TuneDriver
from .suite import SuiteSpec
from .summary import build_report, write_report_json


@dataclass
class SuiteResult:
    """What one suite run produced."""

    spec: SuiteSpec
    out_dir: Path
    report: Optional[dict] = None
    failures: List[str] = field(default_factory=list)
    profile: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        sections = (
            f"{len(self.spec.campaigns)} campaign(s), "
            f"{len(self.spec.services)} service(s), "
            f"{len(self.spec.tunes)} tune(s)"
        )
        if self.failures:
            return (f"suite {self.spec.name}: {sections}; "
                    f"{len(self.failures)} FAILED job(s)")
        return f"suite {self.spec.name}: {sections}; all jobs ok"


class SuiteRunner:
    """Drive every section of a suite and fold the artifacts."""

    def __init__(
        self,
        spec: SuiteSpec,
        out_dir,
        *,
        jobs: int = 1,
        cache=None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        profile: bool = True,
    ) -> None:
        self.spec = spec
        self.out_dir = Path(out_dir)
        self.jobs = jobs
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.profile = profile

    def run(self) -> SuiteResult:
        """Run all sections; build the report only when every job passed.

        Failures don't abort the suite — later sections still run, every
        failure is collected — but a partial report would be worse than
        none, so ``report.json``/``report.html`` are only written for a
        clean run.
        """
        spec = self.spec
        self.out_dir.mkdir(parents=True, exist_ok=True)
        failures: List[str] = []

        for entry in spec.campaigns:
            failures.extend(self._run_campaign(entry))
        for entry in spec.services:
            failures.extend(self._run_service(entry))
        for entry in spec.tunes:
            failures.extend(self._run_tune(entry))

        profile_record = None
        if self.profile:
            profile_record = self._run_profile_pass()

        result = SuiteResult(spec, self.out_dir, failures=failures,
                             profile=profile_record)
        if not failures:
            report = build_report(self.out_dir, spec)
            write_report_json(self.out_dir / "report.json", report)
            from .html import render_html  # local: html imports summary

            (self.out_dir / "report.html").write_text(
                render_html(report, profile=profile_record), encoding="utf-8"
            )
            result.report = report
        return result

    # -- sections -----------------------------------------------------------

    def _run_campaign(self, entry) -> List[str]:
        out_dir = self.out_dir / f"campaign-{entry.name}"
        out_dir.mkdir(parents=True, exist_ok=True)
        matrix = entry.matrix(self.spec.seed)
        jobs = matrix.expand()
        if entry.faults is not None:
            jobs = apply_fault_plan(jobs, entry.faults)
        report = CampaignRunner(
            jobs,
            workers=self.jobs,
            cache=self.cache,
            manifest_path=str(out_dir / "manifest.jsonl"),
            timeout_s=self.timeout_s,
            retries=self.retries,
            base_seed=matrix.base_seed,
            attribution_mode="summary" if entry.fold_attribution else "journeys",
        ).run()
        markdown = "\n\n".join(t.to_markdown() for t in report.tables()) + "\n"
        (out_dir / "experiments.md").write_text(markdown, encoding="utf-8")
        report.write_telemetry(
            str(out_dir / "metrics.jsonl"),
            params={"suite": self.spec.name, "campaign": entry.name,
                    "seed": matrix.base_seed, "count": len(jobs)},
        )
        report.write_attribution(str(out_dir / "attribution.jsonl"),
                                 name=f"suite:{self.spec.name}:{entry.name}")
        return [
            f"campaign {entry.name}: {o.job.job_id}: {o.error}"
            for o in report.failed
        ]

    def _run_service(self, entry) -> List[str]:
        from ..service import ServiceDriver  # local: service imports campaign

        result = ServiceDriver(
            entry.schedule,
            out_dir=self.out_dir / f"service-{entry.name}",
            seed=self.spec.seed,
            shards=self.jobs,
            repetitions=entry.repetitions,
            calib_samples=entry.calib_samples,
            faults=entry.faults,
            cache=self.cache,
            timeout_s=self.timeout_s,
        ).run()
        return [
            f"service {entry.name}: {o.job.job_id}: {o.error}"
            for o in result.failed
        ]

    def _run_tune(self, entry) -> List[str]:
        report = TuneDriver(
            entry.spec,
            seed=self.spec.seed,
            workers=self.jobs,
            cache=self.cache,
            out_dir=str(self.out_dir / f"tune-{entry.name}"),
            resume=self.cache is not None,
            timeout_s=self.timeout_s,
            retries=self.retries,
            faults=entry.faults,
        ).run()
        return [
            f"tune {entry.name}: {o.job.job_id}: {o.error}"
            for o in report.failed
        ]

    # -- kernel profile ------------------------------------------------------

    def _run_profile_pass(self) -> Optional[dict]:
        """Profile one representative experiment in-process.

        Returns the written ``repro.profile/v1`` record, or ``None`` when
        the suite disabled profiling.  The experiment re-runs outside the
        campaign engine — the profiler hooks the parent's sim kernel, and
        a cached campaign result would have nothing to profile.
        """
        job = self.spec.profile_job()
        if job is None:
            return None
        experiment, kwargs, seed = job
        with profiled() as prof:
            get_experiment(experiment).runner(**kwargs, seed=seed)
        return write_profile(
            self.out_dir / "kernel_profile.json", prof,
            suite=self.spec.name, experiment=experiment,
            kwargs={k: kwargs[k] for k in sorted(kwargs)}, seed=seed,
        )
