"""Reports and regression verdicts over the repo's run artifacts.

Everything upstream emits machine-readable JSONL — attribution journeys,
fault windows, service run tables, Pareto fronts — and this package is
where they become *legible* and *comparable*:

* :mod:`~repro.report.artifacts` — the one shared loader for every
  JSONL artifact (file-or-directory resolution, strict/lenient
  malformed-line handling, deterministic multi-source merging) that the
  CLI scripts previously each reimplemented;
* :mod:`~repro.report.suite` / :mod:`~repro.report.runner` — a
  declarative ``repro.suite/v1`` spec bundling campaigns, fault plans,
  service schedules, and tune specs into one named run driven through
  the campaign engine (cached, resumable, worker-count-invariant);
* :mod:`~repro.report.summary` — folds a suite run's artifacts into one
  machine-readable ``report.json`` whose bytes are independent of
  worker count (wall-clock never enters it);
* :mod:`~repro.report.html` — renders the same data as a single
  self-contained HTML page (inline CSS + SVG, no network, no deps);
* :mod:`~repro.report.diff` — compares two suite runs scenario by
  scenario with budget-matched percentile deltas and per-metric
  tolerances, emitting a deterministic PASS/WARN/FAIL verdict usable as
  a CI gate.

``scripts/run_suite.py`` and ``scripts/diff_artifacts.py`` are the
CLIs; the spec schema, report anatomy, and diff semantics live in
``docs/reports.md``.
"""

from .artifacts import (
    journeys_of_session,
    load_fault_plan,
    load_journeys,
    load_report,
    read_artifact,
    resolve_artifact,
)
from .diff import (
    DEFAULT_TOLERANCES,
    DiffFinding,
    DiffResult,
    VERDICTS,
    diff_reports,
    render_diff,
)
from .html import render_html
from .runner import SuiteResult, SuiteRunner
from .suite import SUITE_SCHEMA, SuiteSpec
from .summary import REPORT_SCHEMA, build_report, write_report_json

__all__ = [
    "DEFAULT_TOLERANCES",
    "DiffFinding",
    "DiffResult",
    "REPORT_SCHEMA",
    "SUITE_SCHEMA",
    "SuiteResult",
    "SuiteRunner",
    "SuiteSpec",
    "VERDICTS",
    "build_report",
    "diff_reports",
    "journeys_of_session",
    "load_fault_plan",
    "load_journeys",
    "load_report",
    "read_artifact",
    "render_diff",
    "render_html",
    "resolve_artifact",
    "write_report_json",
]
