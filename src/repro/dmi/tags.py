"""The 32-entry command tag window.

The POWER8 host maintains thirty-two tags identifying commands in flight on
one DMI channel (Section 2.3).  A command occupies its tag from issue until
the buffer's *done* arrives.  When all tags are outstanding the host cannot
issue — this is exactly the coupling the paper highlights: a slow buffer does
not just add latency, it throttles throughput once the tag window fills.

:class:`TagPool` tracks the window and records how long issue stalls waiting
for a free tag, so experiments can report both effects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ProtocolError, TagExhaustedError
from ..sim import Signal, Simulator

NUM_TAGS = 32


class TagPool:
    """Allocator for the per-channel 32-tag command window."""

    def __init__(self, sim: Simulator, num_tags: int = NUM_TAGS):
        if num_tags <= 0:
            raise ProtocolError(f"tag pool needs at least one tag, got {num_tags}")
        self.sim = sim
        self.num_tags = num_tags
        self._free: List[int] = list(range(num_tags))
        self._in_flight: Dict[int, int] = {}  # tag -> issue time (ps)
        self._waiters: List[Signal] = []
        # Stats
        self.total_acquired = 0
        self.stall_events = 0
        self.stall_ps = 0

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def in_flight_count(self) -> int:
        return len(self._in_flight)

    def try_acquire(self) -> Optional[int]:
        """Take a free tag, or ``None`` if the window is full."""
        if not self._free:
            return None
        tag = self._free.pop(0)
        self._in_flight[tag] = self.sim.now_ps
        self.total_acquired += 1
        return tag

    def acquire_or_raise(self) -> int:
        """Take a free tag; raise :class:`TagExhaustedError` if none is free."""
        tag = self.try_acquire()
        if tag is None:
            raise TagExhaustedError(
                f"all {self.num_tags} tags in flight at t={self.sim.now_ps}ps"
            )
        return tag

    def acquire(self):
        """Process-style acquire: generator yielding until a tag frees up.

        Usage inside a process: ``tag = yield from pool.acquire()``.
        """
        tag = self.try_acquire()
        if tag is not None:
            return tag
        self.stall_events += 1
        stall_start = self.sim.now_ps
        while tag is None:
            gate = Signal("tag-wait")
            self._waiters.append(gate)
            yield gate
            tag = self.try_acquire()
        self.stall_ps += self.sim.now_ps - stall_start
        return tag

    def release(self, tag: int) -> int:
        """Return ``tag`` to the pool; returns how long it was held (ps)."""
        if tag not in self._in_flight:
            raise ProtocolError(f"releasing tag {tag} that is not in flight")
        issued_at = self._in_flight.pop(tag)
        self._free.append(tag)
        if self._waiters:
            # Wake exactly one waiter per freed tag to avoid thundering herds.
            self._waiters.pop(0).trigger()
        return self.sim.now_ps - issued_at

    def held_since(self, tag: int) -> int:
        """Issue timestamp of an in-flight tag."""
        if tag not in self._in_flight:
            raise ProtocolError(f"tag {tag} is not in flight")
        return self._in_flight[tag]
