"""DMI channel protocol: frame handshake, replay, and the command layer.

This module implements the two-level handshake of Section 2.3:

* **Frame loop** (:class:`FrameEndpoint`): every transmitted frame carries a
  6-bit sequence ID and is held in a replay buffer until the peer's
  cumulative ACK arrives (ACKs ride in frames travelling the opposite
  direction).  A receiver silently drops frames that fail CRC or arrive out
  of sequence; the transmitter notices the missing ACK after the measured
  round-trip time and replays from the oldest unacknowledged frame.  No NAK
  or explicit frame ID is ever sent back.

* **Command loop** (:class:`HostCommandLayer` / :class:`BufferCommandLayer`):
  commands are issued with one of 32 tags, write data arrives in 16-byte
  chunks interleaved across frames, read data returns in 32-byte chunks, and
  a *done* retires the tag.

The ConTutto-specific replay behaviour is modeled: an FPGA endpoint needs
``replay_prep_ps`` to fence off MBS and switch its transmit path to the
replay buffer.  If that exceeds the host's ``max_replay_start_ps`` the
channel fails — unless the *freeze workaround* is enabled, in which case the
endpoint re-transmits its last frame (duplicates the host ignores) until the
replay is ready, exactly the "cheat" of Section 3.3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

from ..errors import ProtocolError, ReplayError
from ..sim import Signal, Simulator
from ..telemetry import probe
from ..units import CACHE_LINE_BYTES
from .commands import Command, Opcode, Response
from .frames import (
    DOWN_DATA_CHUNK,
    SEQ_MOD,
    UP_DATA_CHUNK,
    CommandHeader,
    DataChunk,
    DoneNotice,
    DownstreamFrame,
    Frame,
    TrainingFrame,
    UpstreamFrame,
    next_seq,
    seq_distance,
)
from .link import SerialLink
from .replay import DEFAULT_DEPTH, ReplayBuffer

#: chunk offset value that marks a byte-enable mask chunk (masks are 16 bytes
#: of bits covering the 128-byte line; real offsets are 0..112)
MASK_CHUNK_OFFSET = CACHE_LINE_BYTES


@dataclass
class EndpointConfig:
    """Per-endpoint protocol timing and behaviour knobs."""

    #: internal logic latency from payload ready to frame on the link
    tx_overhead_ps: int = 500
    #: internal logic latency from frame delivery to payload visible
    rx_overhead_ps: int = 500
    #: how long past the measured round trip before a missing ACK is declared
    ack_timeout_margin_ps: int = 10_000
    #: delay before sending a pure-ACK idle frame when there is no other traffic
    idle_ack_delay_ps: int = 1_000
    #: time to fence the command pipeline and switch to the replay buffer
    replay_prep_ps: int = 0
    #: retransmit the last frame while preparing replay (ConTutto's "cheat")
    freeze_workaround: bool = False
    #: consecutive replays without ACK progress before the channel fails
    replay_limit: int = 8
    #: replay buffer depth (bounds unacknowledged frames in flight)
    replay_depth: int = DEFAULT_DEPTH
    #: the longest the peer tolerates between replay trigger and replay start;
    #: only enforced against endpoints whose peer is a POWER8 host
    max_replay_start_ps: Optional[int] = None


class FrameEndpoint:
    """One side of the DMI frame loop (link layer + replay)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tx_link: SerialLink,
        frame_in_cls: type,
        config: EndpointConfig,
        on_payload: Callable[[Frame], None],
        on_fail: Optional[Callable[[Exception], None]] = None,
    ):
        self.sim = sim
        self.name = name
        self.tx_link = tx_link
        self.frame_in_cls = frame_in_cls
        # we *receive* frame_in_cls frames, so we transmit the other kind
        self._frame_out_cls = (
            DownstreamFrame if frame_in_cls is UpstreamFrame else UpstreamFrame
        )
        self.config = config
        self.on_payload = on_payload
        self.on_fail = on_fail
        self.peer: Optional["FrameEndpoint"] = None

        self._next_tx_seq = 0
        self._last_tx_frame: Optional[Frame] = None
        self._last_accepted: Optional[int] = None
        # popped from the front on every pump: a deque keeps that O(1)
        self._tx_queue: Deque[dict] = deque()
        self._replay = ReplayBuffer(config.replay_depth)
        self._ack_check_scheduled = False
        self._idle_ack_scheduled = False
        self._last_idle_ack_ps = -(10**12)
        self._replay_in_progress = False
        self._consecutive_replays = 0
        #: measured at link training; ACK timeout = frtl + margin
        self.frtl_ps: int = 0
        self.failed = False
        #: the exception that killed the channel (None while operational)
        self.failure: Optional[Exception] = None
        #: during training: echo received signature frames back (buffer side)
        self.training_echo = False
        #: during training: callback for echoed signatures (host side)
        self.on_training: Optional[Callable[[TrainingFrame], None]] = None
        # Stats
        self.frames_accepted = 0
        self.crc_drops = 0
        self.seq_drops = 0
        self.duplicates_seen = 0
        self.replays_triggered = 0
        self.ack_timeouts = 0
        self.freeze_frames_sent = 0

    # -- transmit ----------------------------------------------------------

    def enqueue(self, **frame_fields: object) -> None:
        """Queue a payload for transmission (fields of the outgoing frame)."""
        if self.failed:
            if isinstance(self.failure, ReplayError):
                # replay exhaustion killed the channel: surface the specific
                # error class so callers can route to firmware recovery
                raise ReplayError(
                    f"endpoint {self.name!r}: channel is down ({self.failure})"
                )
            raise ProtocolError(f"endpoint {self.name!r}: channel is down")
        self._tx_queue.append(dict(frame_fields))
        self.sim.call_after(self.config.tx_overhead_ps, self._pump)

    def _build_frame(self, seq: int, fields: dict) -> Frame:
        return self._frame_out_cls(seq, self._last_accepted, **fields)

    def _pump(self) -> None:
        if self.failed or self._replay_in_progress:
            return
        while self._tx_queue and not self._replay.is_full:
            fields = self._tx_queue.popleft()
            seq = self._next_tx_seq
            self._next_tx_seq = next_seq(seq)
            frame = self._build_frame(seq, fields)
            self.tx_link.send(frame.pack())
            # Hold the frame OBJECT (not its packed bytes): retransmissions
            # re-pack with the ACK field refreshed.  Stamp the hold with the
            # time the frame finishes serializing — under a transmit backlog
            # that is later than now, and the ACK timer must not start
            # before the frame even leaves.
            self._replay.hold(seq, frame, self.tx_link.next_free_ps)
            self._last_tx_frame = frame
        self._schedule_ack_check()

    # -- ACK timeout / replay ------------------------------------------------

    @property
    def _ack_timeout_ps(self) -> int:
        # A transmit burst serializes at one frame per wire time, so the ACK
        # for the oldest frame can legitimately lag by the whole burst length.
        burst = self._replay.outstanding * self.tx_link.frame_wire_ps
        return self.frtl_ps + self.config.ack_timeout_margin_ps + burst

    def _schedule_ack_check(self) -> None:
        if self._ack_check_scheduled or self._replay.outstanding == 0:
            return
        oldest = self._replay.oldest_unacked()
        assert oldest is not None
        _, _, sent_at = oldest
        self._ack_check_scheduled = True
        deadline = sent_at + self._ack_timeout_ps
        self.sim.call_at(max(deadline, self.sim.now_ps), self._ack_check)

    def _ack_check(self) -> None:
        self._ack_check_scheduled = False
        if self.failed or self._replay_in_progress:
            return
        oldest = self._replay.oldest_unacked()
        if oldest is None:
            return
        _, _, sent_at = oldest
        if self.sim.now_ps - sent_at >= self._ack_timeout_ps:
            self.ack_timeouts += 1
            trace = probe.session
            if trace is not None:
                trace.count("dmi.ack_timeouts")
            self._start_replay()
        else:
            self._schedule_ack_check()

    def _start_replay(self) -> None:
        self._consecutive_replays += 1
        self.replays_triggered += 1
        trace = probe.session
        if trace is not None:
            trace.instant(
                "dmi", f"replay:{self.name}", self.sim.now_ps,
                {"consecutive": self._consecutive_replays,
                 "outstanding": self._replay.outstanding},
            )
            trace.count("dmi.replays")
        if self._consecutive_replays > self.config.replay_limit:
            self._fail(ReplayError(
                f"endpoint {self.name!r}: {self._consecutive_replays} replays "
                "without ACK progress"
            ))
            return
        prep = self.config.replay_prep_ps
        limit = self.config.max_replay_start_ps
        if limit is not None and prep > limit and not self.config.freeze_workaround:
            self._fail(ReplayError(
                f"endpoint {self.name!r}: replay start {prep}ps exceeds host "
                f"limit {limit}ps and freeze workaround is disabled"
            ))
            return
        self._replay_in_progress = True
        if prep > 0 and self.config.freeze_workaround and self._last_tx_frame:
            # Freeze the flow from the host's perspective: keep re-sending the
            # last upstream frame (a duplicate the peer ignores) until ready.
            n_freeze = max(1, prep // max(self.tx_link.frame_wire_ps, 1))
            for _ in range(min(n_freeze, 64)):
                self.tx_link.send(self._repack(self._last_tx_frame))
                self.freeze_frames_sent += 1
                if trace is not None:
                    trace.count("dmi.freeze_frames")
        self.sim.call_after(prep, self._do_replay)

    def _repack(self, frame: Frame) -> bytes:
        """Serialize with the ACK field refreshed to the current state.

        Re-sending a frame with the ACK it was *originally* packed with is
        dangerous: after the 6-bit sequence space wraps, that stale value
        can alias into the peer's live transmit window and cumulatively
        retire frames the peer never actually delivered to us.
        """
        frame.ack_seq = self._last_accepted
        return frame.pack()

    def _do_replay(self) -> None:
        if self.failed:
            return
        for _, frame in self._replay.frames_for_replay():
            self.tx_link.send(self._repack(frame))
            self._last_tx_frame = frame
        # Restart ACK timers from when the replay burst has fully drained
        # onto the wire, not from now — otherwise a backlog triggers another
        # replay before this one has even been transmitted.
        self._replay.mark_resent(self.tx_link.next_free_ps)
        self._replay_in_progress = False
        self._schedule_ack_check()
        self._pump()

    def _fail(self, exc: Exception) -> None:
        self.failed = True
        self.failure = exc
        trace = probe.session
        if trace is not None:
            trace.instant(
                "dmi", f"channel_failed:{self.name}", self.sim.now_ps,
                {"error": str(exc)},
            )
            trace.count("dmi.channel_failed")
        if self.on_fail is not None:
            self.on_fail(exc)
        else:
            raise exc

    def reset(self) -> None:
        """Return the endpoint to its power-on protocol state.

        Used by firmware-driven channel recovery: after a reset on both
        sides, link training re-establishes scrambler sync and FRTL and the
        channel comes back without a system reboot.  Any in-flight frames
        are discarded — command-layer state must be reset alongside.
        """
        self.failed = False
        self.failure = None
        self._next_tx_seq = 0
        self._last_tx_frame = None
        self._last_accepted = None
        self._tx_queue.clear()
        self._replay = ReplayBuffer(self.config.replay_depth)
        self._ack_check_scheduled = False
        self._idle_ack_scheduled = False
        self._last_idle_ack_ps = -(10**12)
        self._replay_in_progress = False
        self._consecutive_replays = 0
        self.frtl_ps = 0

    # -- receive ------------------------------------------------------------

    def deliver(self, raw: bytes) -> None:
        """Link receiver callback (wired via :meth:`SerialLink.connect`)."""
        self.sim.call_after(self.config.rx_overhead_ps, self._process_rx, raw)

    def send_training_signature(self, signature: int) -> None:
        """Transmit an FRTL-measurement signature (training only)."""
        self.tx_link.send(TrainingFrame(signature).pack())

    def _handle_training(self, raw: bytes) -> None:
        try:
            frame = TrainingFrame.unpack(raw)
        except ProtocolError:
            self.crc_drops += 1
            return
        if self.training_echo and not frame.echoed:
            # Mirror the signature back after our internal pipeline delay —
            # this is what makes the measured FRTL include the buffer logic.
            self.sim.call_after(
                self.config.tx_overhead_ps,
                lambda: self.tx_link.send(TrainingFrame(frame.signature, echoed=True).pack()),
            )
        elif self.on_training is not None:
            self.on_training(frame)

    def _process_rx(self, raw: bytes) -> None:
        if self.failed:
            return
        if raw and raw[0] == TrainingFrame.KIND:
            self._handle_training(raw)
            return
        try:
            frame = self.frame_in_cls.unpack(raw)
        except ProtocolError:
            self.crc_drops += 1
            trace = probe.session
            if trace is not None:
                trace.instant("dmi", f"crc_drop:{self.name}", self.sim.now_ps)
                trace.count("dmi.crc_drops")
            return
        # 1) the ACK piggybacked on this frame retires our transmitted frames
        if frame.ack_seq is not None:
            retired = self._replay.ack(frame.ack_seq)
            if retired:
                self._consecutive_replays = 0
                self._pump()
        # 2) sequence check for the payload direction.  Forward distance from
        # the last accepted frame classifies the arrival: 1 = the expected
        # next frame; 2..depth = a gap (something before it was dropped, so
        # drop this too and let replay resend in order); anything else can
        # only be a duplicate of an already-accepted frame (replay holds at
        # most `depth` frames, so live frames are never further ahead).
        if self._last_accepted is None:
            fwd = (frame.seq_id + 1) % SEQ_MOD  # as if last_accepted were -1
        else:
            fwd = seq_distance(self._last_accepted, frame.seq_id)
        if fwd == 1:
            self._last_accepted = frame.seq_id
            self.frames_accepted += 1
            trace = probe.session
            if trace is not None:
                trace.count("dmi.frames_accepted")
            self._note_ack_owed()
            self.on_payload(frame)
        elif 2 <= fwd <= self.config.replay_depth:
            self.seq_drops += 1
            trace = probe.session
            if trace is not None:
                trace.count("dmi.seq_drops")
        else:
            self.duplicates_seen += 1
            trace = probe.session
            if trace is not None:
                trace.count("dmi.duplicates")
            # Re-ACK only *payload* duplicates: they mean the peer is
            # replaying held frames because our earlier ACK was lost.  An
            # idle duplicate is just an ACK carrier — it is never held for
            # replay, so answering it with another idle ACK would bounce
            # idle frames between the endpoints forever.
            if not getattr(frame, "is_idle", True):
                self._note_ack_owed()

    def _note_ack_owed(self) -> None:
        """Make sure the peer hears our ACK even if we have nothing to send.

        Idle ACKs are coalesced and rate-limited: under a duplicate storm
        (peer replaying) one ACK answers the whole burst.  Flooding one idle
        frame per received duplicate would saturate the opposite wire and
        congest the channel into collapse.
        """
        if self._idle_ack_scheduled:
            return
        self._idle_ack_scheduled = True
        earliest = self._last_idle_ack_ps + 4 * self.tx_link.frame_wire_ps
        fire_at = max(self.sim.now_ps + self.config.idle_ack_delay_ps, earliest)
        self.sim.call_at(fire_at, self._send_idle_ack)

    def _send_idle_ack(self) -> None:
        self._idle_ack_scheduled = False
        if self.failed or self._last_accepted is None:
            return
        if self._tx_queue:
            return  # a data frame will carry the ACK
        self._last_idle_ack_ps = self.sim.now_ps
        # Idle ACK frames re-use a sequence ID the peer has *already
        # acknowledged* (the peer treats them as duplicates), so they need no
        # ACK themselves and the ack exchange terminates.  Reusing merely the
        # last *transmitted* ID would be wrong: if that frame was corrupted
        # in flight, the peer would accept the empty idle frame in its place.
        oldest = self._replay.oldest_unacked()
        if oldest is not None:
            seq = (oldest[0] - 1) % SEQ_MOD
        else:
            seq = (self._next_tx_seq - 1) % SEQ_MOD
        self.tx_link.send(self._frame_out_cls(seq, self._last_accepted).pack())


# ---------------------------------------------------------------------------
# Command layer
# ---------------------------------------------------------------------------

_CHUNKS_PER_WRITE = CACHE_LINE_BYTES // DOWN_DATA_CHUNK   # 8
_CHUNKS_PER_READ = CACHE_LINE_BYTES // UP_DATA_CHUNK      # 4


@dataclass
class _HostPending:
    command: Command
    signal: Signal
    issued_ps: int
    chunks: Dict[int, bytes] = field(default_factory=dict)


class HostCommandLayer:
    """Processor-side command issue over a :class:`FrameEndpoint`."""

    def __init__(self, sim: Simulator, endpoint: FrameEndpoint):
        self.sim = sim
        self.endpoint = endpoint
        self._pending: Dict[int, _HostPending] = {}
        # Stats
        self.commands_issued = 0
        self.commands_completed = 0

    def issue(self, command: Command) -> Signal:
        """Send ``command`` downstream; returns a Signal firing with Response."""
        if command.tag in self._pending:
            raise ProtocolError(f"tag {command.tag} already has a command in flight")
        done = Signal(f"cmd.tag{command.tag}")
        self._pending[command.tag] = _HostPending(command, done, self.sim.now_ps)
        self.commands_issued += 1
        trace = probe.session
        if trace is not None:
            trace.count("dmi.commands_issued")

        first_chunk = None
        if command.opcode.has_downstream_data:
            assert command.data is not None
            first_chunk = DataChunk(command.tag, 0, command.data[:DOWN_DATA_CHUNK])
        header = CommandHeader(command.opcode, command.tag, command.address)
        self.endpoint.enqueue(command=header, chunk=first_chunk)

        if command.opcode is Opcode.PARTIAL_WRITE:
            assert command.byte_enable is not None
            mask_bits = bytearray(CACHE_LINE_BYTES // 8)
            for i, enabled in enumerate(command.byte_enable):
                if enabled:
                    mask_bits[i // 8] |= 1 << (i % 8)
            self.endpoint.enqueue(
                chunk=DataChunk(command.tag, MASK_CHUNK_OFFSET, bytes(mask_bits))
            )
        if command.opcode.has_downstream_data:
            assert command.data is not None
            for off in range(DOWN_DATA_CHUNK, CACHE_LINE_BYTES, DOWN_DATA_CHUNK):
                self.endpoint.enqueue(
                    chunk=DataChunk(command.tag, off, command.data[off : off + DOWN_DATA_CHUNK])
                )
        return done

    def on_upstream(self, frame: UpstreamFrame) -> None:
        """Payload handler for the host's receive direction."""
        if frame.chunk is not None:
            pending = self._pending.get(frame.chunk.tag)
            if pending is None:
                raise ProtocolError(f"read data for idle tag {frame.chunk.tag}")
            pending.chunks[frame.chunk.offset] = frame.chunk.data
        for done in frame.dones:
            self._complete(done.tag)

    def _complete(self, tag: int) -> None:
        pending = self._pending.pop(tag, None)
        if pending is None:
            raise ProtocolError(f"done for idle tag {tag}")
        data = None
        if pending.command.opcode.returns_data:
            if len(pending.chunks) != _CHUNKS_PER_READ:
                raise ProtocolError(
                    f"tag {tag}: done before all read data "
                    f"({len(pending.chunks)}/{_CHUNKS_PER_READ} chunks)"
                )
            data = b"".join(
                pending.chunks[off] for off in range(0, CACHE_LINE_BYTES, UP_DATA_CHUNK)
            )
        self.commands_completed += 1
        trace = probe.session
        if trace is not None:
            # the frame-loop round trip of one command: issue to done
            trace.complete(
                "dmi", f"cmd.{pending.command.opcode.value}",
                pending.issued_ps, self.sim.now_ps, {"tag": tag},
            )
            trace.count("dmi.commands_completed")
            trace.record("dmi.cmd_rtt_ps", self.sim.now_ps - pending.issued_ps)
            journeys = trace.journeys
            jid = pending.command.journey
            if journeys is not None and jid is not None:
                # upstream leg: buffer respond through done delivery
                journeys.stage_to(jid, "dmi.up", self.sim.now_ps)
        pending.signal.trigger(Response(tag, pending.command.opcode, data))

    @property
    def in_flight(self) -> int:
        return len(self._pending)


@dataclass
class _BufferPending:
    header: CommandHeader
    chunks: Dict[int, bytes] = field(default_factory=dict)
    mask: Optional[bytes] = None


class BufferCommandLayer:
    """Buffer-side command assembly and response transmission.

    ``handler(command, respond)`` is the buffer model's entry point: it
    receives a fully assembled :class:`Command` and a ``respond(Response)``
    callable to invoke when execution finishes (after whatever simulated
    delay the buffer's internals add).
    """

    def __init__(
        self,
        sim: Simulator,
        endpoint: FrameEndpoint,
        handler: Callable[[Command, Callable[[Response], None]], None],
        channel_name: str = "",
    ):
        self.sim = sim
        self.endpoint = endpoint
        self.handler = handler
        #: the owning channel's name — the journey tracker's binding key
        #: (frames carry no journey id across the wire)
        self.channel_name = channel_name or endpoint.name.rsplit(".", 1)[0]
        self._assembling: Dict[int, _BufferPending] = {}
        # Stats
        self.commands_received = 0
        self.responses_sent = 0

    def on_downstream(self, frame: DownstreamFrame) -> None:
        """Payload handler for the buffer's receive direction."""
        if frame.command is not None:
            tag = frame.command.tag
            if tag in self._assembling:
                raise ProtocolError(f"tag {tag}: command while previous is assembling")
            self._assembling[tag] = _BufferPending(frame.command)
        if frame.chunk is not None:
            pending = self._assembling.get(frame.chunk.tag)
            if pending is None:
                raise ProtocolError(f"write data for idle tag {frame.chunk.tag}")
            if frame.chunk.offset == MASK_CHUNK_OFFSET:
                pending.mask = frame.chunk.data
            else:
                pending.chunks[frame.chunk.offset] = frame.chunk.data
        for tag in list(self._assembling):
            if self._is_complete(self._assembling[tag]):
                self._dispatch(tag)

    def _is_complete(self, pending: _BufferPending) -> bool:
        op = pending.header.opcode
        if op.has_downstream_data and len(pending.chunks) < _CHUNKS_PER_WRITE:
            return False
        if op is Opcode.PARTIAL_WRITE and pending.mask is None:
            return False
        return True

    def _dispatch(self, tag: int) -> None:
        pending = self._assembling.pop(tag)
        op = pending.header.opcode
        data = None
        if op.has_downstream_data:
            data = b"".join(
                pending.chunks[off] for off in range(0, CACHE_LINE_BYTES, DOWN_DATA_CHUNK)
            )
        byte_enable = None
        if op is Opcode.PARTIAL_WRITE:
            assert pending.mask is not None
            byte_enable = bytes(
                1 if (pending.mask[i // 8] >> (i % 8)) & 1 else 0
                for i in range(CACHE_LINE_BYTES)
            )
        command = Command(op, pending.header.address, tag, data, byte_enable)
        self.commands_received += 1
        trace = probe.session
        if trace is not None:
            journeys = trace.journeys
            if journeys is not None:
                jid = journeys.bound(self.channel_name, tag)
                if jid is not None:
                    # re-attach the journey the wire stripped, and close the
                    # downstream leg: host issue through command assembly
                    command.journey = jid
                    journeys.stage_to(jid, "dmi.down", self.sim.now_ps)
        self.handler(command, lambda resp: self.respond(resp))

    def respond(self, response: Response) -> None:
        """Send a response upstream: data chunks (if any) then the done."""
        trace = probe.session
        if trace is not None:
            journeys = trace.journeys
            if journeys is not None:
                jid = journeys.bound(self.channel_name, response.tag)
                if jid is not None:
                    # buffer window: command dispatch through response ready
                    journeys.stage_to(jid, "buffer", self.sim.now_ps)
        if response.data is not None:
            offsets = list(range(0, CACHE_LINE_BYTES, UP_DATA_CHUNK))
            for off in offsets[:-1]:
                self.endpoint.enqueue(
                    chunk=DataChunk(response.tag, off, response.data[off : off + UP_DATA_CHUNK])
                )
            last = offsets[-1]
            self.endpoint.enqueue(
                chunk=DataChunk(response.tag, last, response.data[last : last + UP_DATA_CHUNK]),
                dones=[DoneNotice(response.tag)],
            )
        else:
            self.endpoint.enqueue(dones=[DoneNotice(response.tag)])
        self.responses_sent += 1


# ---------------------------------------------------------------------------
# Channel assembly
# ---------------------------------------------------------------------------


class DmiChannel:
    """A fully wired DMI channel: host endpoint <-> buffer endpoint.

    Construction wires the two serial links to the two endpoints and the
    command layers on top.  Link training (:mod:`repro.dmi.training`) must
    run before commands flow; it fills in the measured FRTL on both sides.
    """

    def __init__(
        self,
        sim: Simulator,
        down_link: SerialLink,
        up_link: SerialLink,
        host_config: EndpointConfig,
        buffer_config: EndpointConfig,
        buffer_handler: Callable[[Command, Callable[[Response], None]], None],
        name: str = "dmi0",
    ):
        self.sim = sim
        self.name = name
        self.down_link = down_link
        self.up_link = up_link
        self.failure: Optional[Exception] = None

        self.host_endpoint = FrameEndpoint(
            sim, f"{name}.host", down_link, UpstreamFrame, host_config,
            on_payload=self._host_payload, on_fail=self._on_fail,
        )
        self.buffer_endpoint = FrameEndpoint(
            sim, f"{name}.buffer", up_link, DownstreamFrame, buffer_config,
            on_payload=self._buffer_payload, on_fail=self._on_fail,
        )
        down_link.connect(self.buffer_endpoint.deliver)
        up_link.connect(self.host_endpoint.deliver)

        self.host = HostCommandLayer(sim, self.host_endpoint)
        self.buffer = BufferCommandLayer(
            sim, self.buffer_endpoint, buffer_handler, channel_name=name
        )

    def _host_payload(self, frame: Frame) -> None:
        assert isinstance(frame, UpstreamFrame)
        self.host.on_upstream(frame)

    def _buffer_payload(self, frame: Frame) -> None:
        assert isinstance(frame, DownstreamFrame)
        self.buffer.on_downstream(frame)

    def _on_fail(self, exc: Exception) -> None:
        self.failure = exc
        self.host_endpoint.failed = True
        self.buffer_endpoint.failed = True

    @property
    def operational(self) -> bool:
        return self.failure is None

    def set_frtl(self, frtl_ps: int) -> None:
        """Record the trained frame round-trip latency on both endpoints."""
        self.host_endpoint.frtl_ps = frtl_ps
        self.buffer_endpoint.frtl_ps = frtl_ps

    def reset(self) -> None:
        """Firmware-driven channel reset: both endpoints back to power-on.

        In-flight commands are abandoned (their signals never fire — the
        issuing software layer must re-drive them after recovery), and the
        caller must let any frames still in flight drain before starting
        link training, or the freshly resynchronized descramblers would
        consume keystream for frames the new transmit streams never sent.
        """
        self.failure = None
        self.host_endpoint.reset()
        self.buffer_endpoint.reset()
        self.host._pending.clear()
        self.buffer._assembling.clear()
