"""DMI link training: alignment phases, FRTL measurement, budget check.

Training proceeds the way Section 3.3 describes:

1. **bit / word / frame alignment** — the two sides exchange patterns until
   the receiver locks.  On real hardware "link training often does not
   complete successfully in a single try"; we model each phase with a
   per-attempt lock probability so the firmware's retry path is exercised.
2. **FRTL measurement** — the host transmits signature frames; the buffer
   echoes them after its real (simulated) internal pipeline delay, and the
   host measures the round trip.  The largest of several rounds becomes the
   channel's Frame Round Trip Latency.
3. **budget check** — the POWER8 host hardware tolerates only a bounded
   FRTL.  If the measured value exceeds ``host_max_frtl_ps``, training fails
   with :class:`FrtlBudgetError`: this is the exact design constraint that
   forced the CRC-stage reduction and receiver-FIFO bypass on ConTutto.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import FrtlBudgetError, LinkTrainingError
from ..sim import Process, Rng, Signal, Simulator
from ..telemetry import probe
from ..units import ns_to_ps
from .channel import DmiChannel

#: POWER8's maximum tolerable FRTL.  The memory-buffer interface budget is on
#: the order of a few hundred nest cycles; we use 400 ns, which a Centaur
#: clears easily and ConTutto clears only after its timing optimizations.
DEFAULT_HOST_MAX_FRTL_PS = ns_to_ps(400)


@dataclass
class TrainingConfig:
    """Knobs for the training sequence."""

    #: probability that one alignment phase locks on a given attempt
    phase_lock_probability: float = 0.7
    #: alignment attempts per phase before training gives up
    max_phase_attempts: int = 20
    #: simulated duration of one alignment attempt
    phase_attempt_ps: int = ns_to_ps(2_000)
    #: number of FRTL signature round trips (max is taken)
    frtl_rounds: int = 4
    #: host silicon's maximum tolerable FRTL
    host_max_frtl_ps: int = DEFAULT_HOST_MAX_FRTL_PS
    #: extra margin folded into the recorded FRTL (guard band)
    frtl_guard_ps: int = ns_to_ps(4)


@dataclass
class TrainingResult:
    """Outcome of a successful training run."""

    frtl_ps: int
    phase_attempts: List[int] = field(default_factory=list)
    duration_ps: int = 0

    @property
    def total_attempts(self) -> int:
        return sum(self.phase_attempts)


_ALIGNMENT_PHASES = ("bit", "word", "frame")


class LinkTrainer:
    """Runs the training sequence on a :class:`DmiChannel`."""

    def __init__(self, sim: Simulator, config: TrainingConfig, rng: Rng):
        self.sim = sim
        self.config = config
        self.rng = rng

    def train(self, channel: DmiChannel) -> Process:
        """Start training as a simulated process; result is TrainingResult.

        Raises :class:`LinkTrainingError` (alignment never locked) or
        :class:`FrtlBudgetError` (measured FRTL over the host limit) inside
        the process — callers see it when reading ``process.result``.
        """
        return Process(self.sim, self._run(channel), name=f"train.{channel.name}")

    def _run(self, channel: DmiChannel):
        start_ps = self.sim.now_ps
        trace = probe.session
        if trace is not None:
            # every train() entry is a (re)train of the channel: the first is
            # initial bring-up, later ones are firmware-driven retrains
            trace.instant("dmi", f"retrain:{channel.name}", start_ps)
            trace.count("dmi.trainings_started")
        channel.down_link.resync()
        channel.up_link.resync()

        attempts_per_phase: List[int] = []
        for phase in _ALIGNMENT_PHASES:
            attempts = 0
            locked = False
            while attempts < self.config.max_phase_attempts:
                attempts += 1
                yield self.config.phase_attempt_ps
                if self.rng.chance(self.config.phase_lock_probability):
                    locked = True
                    break
            if not locked:
                raise LinkTrainingError(
                    f"{channel.name}: {phase} alignment failed after "
                    f"{attempts} attempts"
                )
            attempts_per_phase.append(attempts)

        frtl_ps = yield from self._measure_frtl(channel)
        frtl_ps += self.config.frtl_guard_ps
        if frtl_ps > self.config.host_max_frtl_ps:
            raise FrtlBudgetError(
                f"{channel.name}: measured FRTL {frtl_ps / 1000:.1f} ns exceeds "
                f"host limit {self.config.host_max_frtl_ps / 1000:.1f} ns"
            )
        channel.set_frtl(frtl_ps)
        trace = probe.session  # re-fetch: training spans many sim events
        if trace is not None:
            trace.complete(
                "dmi", f"train:{channel.name}", start_ps, self.sim.now_ps,
                {"frtl_ps": frtl_ps, "attempts": attempts_per_phase},
            )
            trace.count("dmi.trainings_completed")
        return TrainingResult(
            frtl_ps=frtl_ps,
            phase_attempts=attempts_per_phase,
            duration_ps=self.sim.now_ps - start_ps,
        )

    def _measure_frtl(self, channel: DmiChannel):
        """Signature round trips through the actual simulated pipeline."""
        channel.buffer_endpoint.training_echo = True
        worst = 0
        # Signature frames can themselves be corrupted in flight; retransmit
        # after a generous timeout (real training patterns repeat anyway).
        # The window is at least twice the host's FRTL budget so that an
        # exhausted retry loop is evidence of a budget-busting round trip,
        # not of ordinary frame loss.
        retry_after_ps = max(ns_to_ps(1_000), 2 * self.config.host_max_frtl_ps)
        try:
            for round_no in range(self.config.frtl_rounds):
                attempt = 0
                while True:
                    echo = Signal(f"frtl.{round_no}.{attempt}")
                    signature = (0xA5 << 8) | ((round_no * 16 + attempt) & 0xFF)

                    def on_training(frame, _sig=signature, _echo=echo):
                        if frame.signature == _sig and frame.echoed and not _echo.triggered:
                            _echo.trigger(self.sim.now_ps)

                    def give_up(_echo=echo):
                        if not _echo.triggered:
                            _echo.trigger(None)

                    channel.host_endpoint.on_training = on_training
                    t0 = self.sim.now_ps
                    channel.host_endpoint.send_training_signature(signature)
                    self.sim.call_after(retry_after_ps, give_up)
                    t_arrive = yield echo
                    if t_arrive is not None:
                        worst = max(worst, t_arrive - t0)
                        break
                    attempt += 1
                    if attempt >= 16:
                        raise FrtlBudgetError(
                            f"{channel.name}: no FRTL signature echo within "
                            f"{retry_after_ps / 1000:.0f} ns across {attempt} "
                            "attempts - round trip exceeds the host budget "
                            "or the link is dead"
                        )
        finally:
            channel.buffer_endpoint.training_echo = False
            channel.host_endpoint.on_training = None
        return worst
