"""DMI channel model: frames, CRC, scrambling, links, handshake, training."""

from .channel import (
    BufferCommandLayer,
    DmiChannel,
    EndpointConfig,
    FrameEndpoint,
    HostCommandLayer,
)
from .commands import Command, Opcode, Response
from .crc import append_crc, check_crc, crc16
from .frames import (
    DOWN_DATA_CHUNK,
    DOWN_LANES,
    DOWN_WIRE_BYTES,
    FRAME_UI,
    SEQ_MOD,
    UP_DATA_CHUNK,
    UP_LANES,
    UP_WIRE_BYTES,
    CommandHeader,
    DataChunk,
    DoneNotice,
    DownstreamFrame,
    TrainingFrame,
    UpstreamFrame,
    next_seq,
    seq_distance,
)
from .link import LinkErrorModel, SerialLink
from .replay import ReplayBuffer
from .scrambler import BundleScrambler, LaneScrambler
from .tags import NUM_TAGS, TagPool
from .training import (
    DEFAULT_HOST_MAX_FRTL_PS,
    LinkTrainer,
    TrainingConfig,
    TrainingResult,
)

__all__ = [
    "BufferCommandLayer",
    "BundleScrambler",
    "Command",
    "CommandHeader",
    "DEFAULT_HOST_MAX_FRTL_PS",
    "DOWN_DATA_CHUNK",
    "DOWN_LANES",
    "DOWN_WIRE_BYTES",
    "DataChunk",
    "DmiChannel",
    "DoneNotice",
    "DownstreamFrame",
    "EndpointConfig",
    "FRAME_UI",
    "FrameEndpoint",
    "HostCommandLayer",
    "LaneScrambler",
    "LinkErrorModel",
    "LinkTrainer",
    "NUM_TAGS",
    "Opcode",
    "ReplayBuffer",
    "Response",
    "SEQ_MOD",
    "SerialLink",
    "TagPool",
    "TrainingConfig",
    "TrainingFrame",
    "TrainingResult",
    "UP_DATA_CHUNK",
    "UP_LANES",
    "UP_WIRE_BYTES",
    "UpstreamFrame",
    "append_crc",
    "check_crc",
    "crc16",
    "next_seq",
    "seq_distance",
]
