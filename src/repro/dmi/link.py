"""Physical-layer model of one DMI link direction.

A :class:`SerialLink` is a unidirectional bundle of high-speed lanes (14
downstream, 21 upstream).  It models:

* **serialization**: one frame occupies 16 UI on every lane, so at 8 GHz a
  frame takes 2 ns on the wire and back-to-back frames cannot overlap;
* **latency**: transmitter SerDes + flight time + receiver capture.  The
  receive path differs by capture mode — Centaur uses the forwarded clock,
  while ConTutto's FPGA transceivers recover the clock from the data (CDR)
  and pay extra capture latency (Section 3.2);
* **scrambling**: the byte stream is scrambled at the transmitter and
  descrambled at the receiver with per-lane LFSRs;
* **bit errors**: an error model flips wire bits with a configurable
  per-frame probability, which surfaces at the receiver as CRC failures and
  exercises the replay machinery.

The link delivers raw packed bytes; framing and protocol live in
:mod:`repro.dmi.channel`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from ..errors import ConfigurationError
from ..sim import ClockDomain, Rng, Simulator
from ..telemetry import probe
from .frames import FRAME_UI
from .scrambler import BundleScrambler


@dataclass
class LinkErrorModel:
    """Stochastic corruption of frames in flight.

    ``frame_error_rate`` is the probability that a given frame suffers at
    least one bit flip in transit.  Real DMI links run with raw BERs around
    1e-12 and rely on CRC+replay; tests crank this up to exercise recovery.
    """

    frame_error_rate: float = 0.0
    max_flips: int = 1
    #: corrupt the next N frames unconditionally (deterministic drops for
    #: fault injection); consumed before the stochastic rate is consulted
    force_drops: int = 0

    def corrupt(self, data: bytes, rng: Rng) -> bytes:
        if self.force_drops == 0 and self.frame_error_rate == 0.0:
            # Clean-run fast path: no RNG consultation per frame.  Rng.chance
            # draws nothing for p=0 either, so stream state is unaffected —
            # this only skips the call overhead on every clean frame.
            return data
        if self.force_drops > 0:
            self.force_drops -= 1
            out = bytearray(data)
            out[0] ^= 1
            return bytes(out)
        if not rng.chance(self.frame_error_rate):
            return data
        out = bytearray(data)
        flips = rng.randint(1, max(1, self.max_flips))
        for _ in range(flips):
            bit = rng.randint(0, len(out) * 8 - 1)
            out[bit // 8] ^= 1 << (bit % 8)
        return bytes(out)


class SerialLink:
    """One direction of the DMI channel: an ordered, lossy-by-corruption pipe."""

    #: extra receiver latency when the sampling clock is recovered from data
    CDR_EXTRA_PS = 900
    #: SerDes transmit + receive base latency (both modes)
    SERDES_BASE_PS = 1_600
    #: time of flight over the board trace
    FLIGHT_PS = 500

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_lanes: int,
        link_clock: ClockDomain,
        cdr_capture: bool = False,
        error_model: Optional[LinkErrorModel] = None,
        rng: Optional[Rng] = None,
    ):
        if num_lanes <= 0:
            raise ConfigurationError(f"link {name!r}: needs at least one lane")
        self.sim = sim
        self.name = name
        self.num_lanes = num_lanes
        self.link_clock = link_clock
        self.cdr_capture = cdr_capture
        self.error_model = error_model or LinkErrorModel()
        self.rng = rng or Rng(0, name)
        self._tx_scrambler = BundleScrambler(num_lanes)
        self._rx_scrambler = BundleScrambler(num_lanes)
        # Delivery is ordered and lossless (corruption flips bits, it never
        # drops frames), so the receive descrambler stays in lockstep with
        # the transmitter: the keystream the receiver will generate for a
        # frame is exactly the keystream it was scrambled with.  The link
        # therefore carries each in-flight frame's keystream in a FIFO and
        # descrambles with one big-int XOR instead of running the receive
        # LFSRs a second time.  The one case where lockstep breaks — a
        # resync with frames still in flight — switches the receiver to a
        # live LFSR (see resync()), reproducing the real desync garbage.
        self._key_fifo: Deque[int] = deque()
        self._rx_live = False
        # ClockDomain periods are fixed at construction, so the per-frame
        # wire time is a constant — cached because the send path and the
        # ACK-timeout math read it for every frame.
        self._frame_wire_ps = FRAME_UI * link_clock.period_ps
        self._next_free_ps = 0
        #: span label, formatted once — send() traces every frame
        self._trace_label = f"frame:{name}"
        self._deliver: Optional[Callable[[bytes], None]] = None
        # Stats
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.busy_ps = 0

    # -- wiring ------------------------------------------------------------

    def connect(self, deliver: Callable[[bytes], None]) -> None:
        """Attach the receiver callback; called once during channel assembly."""
        if self._deliver is not None:
            raise ConfigurationError(f"link {self.name!r} already connected")
        self._deliver = deliver

    # -- timing ------------------------------------------------------------

    @property
    def next_free_ps(self) -> int:
        """When the wire finishes serializing everything queued so far."""
        return max(self._next_free_ps, self.sim.now_ps)

    @property
    def frame_wire_ps(self) -> int:
        """Serialization time of one frame: 16 UI at the link rate."""
        return self._frame_wire_ps

    @property
    def latency_ps(self) -> int:
        """Pipe latency from start-of-serialization to start-of-delivery."""
        extra = self.CDR_EXTRA_PS if self.cdr_capture else 0
        return self.SERDES_BASE_PS + self.FLIGHT_PS + extra

    def resync(self) -> None:
        """Reset scrambler state on both ends (start of link training)."""
        self._tx_scrambler.resync()
        self._rx_scrambler.resync()
        if self._key_fifo:
            # Frames are in flight across the resync: the freshly reset
            # receive scrambler is no longer in lockstep with the keystream
            # those frames were scrambled with.  From here on run the
            # receive descrambler as a live state machine so the in-flight
            # frames garble exactly as they would on real hardware (and the
            # link stays desynced until the next clean resync).
            self._key_fifo.clear()
            self._rx_live = True

    # -- transfer ------------------------------------------------------------

    def send(self, packed: bytes) -> int:
        """Transmit one packed frame; returns its delivery timestamp (ps).

        Frames serialize back to back: a send issued while the wire is busy
        queues behind the in-flight frame (the protocol layer paces itself,
        but training patterns burst).
        """
        if self._deliver is None:
            raise ConfigurationError(f"link {self.name!r} has no receiver connected")
        wire_ps = self._frame_wire_ps
        start = max(self.sim.now_ps, self._next_free_ps)
        self._next_free_ps = start + wire_ps
        self.busy_ps += wire_ps

        em = self.error_model
        if (
            em.force_drops == 0
            and em.frame_error_rate == 0.0
            and not self._rx_live
        ):
            # Clean frame: corruption is additive, so scramble-then-
            # descramble cancels exactly and the keystream bytes are never
            # observed — advance the lane LFSRs (state must stay real for
            # any later resync or fault injection) but skip materializing
            # and XORing the keystream twice.  Key 0 keeps the FIFO aligned
            # and makes _arrive's XOR a no-op.
            self._tx_scrambler.skip_frame(len(packed))
            wire = packed
            self._key_fifo.append(0)
        else:
            n = len(packed)
            key = int.from_bytes(self._tx_scrambler.keystream_frame(n), "little")
            wire = (int.from_bytes(packed, "little") ^ key).to_bytes(n, "little")
            wire = em.corrupt(wire, self.rng)
            if not self._rx_live:
                self._key_fifo.append(key)
        arrival = start + wire_ps + self.latency_ps
        self.frames_sent += 1
        trace = probe.session
        if trace is not None:
            # serialization start through delivery: the whole wire transit
            trace.complete("dmi", self._trace_label, start, arrival)
            trace.count("dmi.frames_sent")
        self.sim.call_at(arrival, self._arrive, wire, packed)
        return arrival

    def _arrive(self, wire: bytes, original: bytes) -> None:
        if self._rx_live:
            received = self._rx_scrambler.process(wire)
        else:
            key = self._key_fifo.popleft()
            if key:
                n = len(wire)
                received = (int.from_bytes(wire, "little") ^ key).to_bytes(n, "little")
            else:
                received = wire
        if received != original:
            self.frames_corrupted += 1
            trace = probe.session
            if trace is not None:
                trace.instant("dmi", f"corrupt:{self.name}", self.sim.now_ps)
                trace.count("dmi.frames_corrupted")
        assert self._deliver is not None
        self._deliver(received)

    def utilization(self, window_ps: int) -> float:
        """Fraction of ``window_ps`` the wire spent serializing frames."""
        if window_ps <= 0:
            raise ValueError("utilization window must be positive")
        return min(1.0, self.busy_ps / window_ps)
