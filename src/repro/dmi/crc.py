"""CRC for DMI frame protection.

The paper states both upstream and downstream frames are protected with a
"strong cyclic redundancy check".  The POWER8 memory-buffer manual does not
publish the exact polynomial, so we use CRC-16/CCITT-FALSE (polynomial
0x1021, init 0xFFFF) — a standard 16-bit CRC of the same strength class.
What the experiments exercise is the *behaviour*: any corrupted frame fails
its check and triggers replay, and an intact frame never does.

A table-driven implementation is provided because frames are checked on
every transfer in protocol-level simulations.
"""

from __future__ import annotations

from typing import List

CRC16_POLY = 0x1021
CRC16_INIT = 0xFFFF


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return table


_TABLE = _build_table()


def _advance16(crc: int) -> int:
    """Advance the CRC register by 16 zero bits (two byte-table steps)."""
    table = _TABLE
    crc = ((crc << 8) & 0xFFFF) ^ table[crc >> 8]
    return ((crc << 8) & 0xFFFF) ^ table[crc >> 8]


# Pair tables: one byte-table step is ``step(crc, b) == advance8(crc ^ (b << 8))``
# (the incoming byte XORs into the top of the register before it shifts out),
# so two steps collapse to ``advance16(crc ^ (b0 << 8) ^ b1)`` and advance16
# splits per register byte because it is GF(2)-linear.  Frames are checked on
# every wire transfer, so crc16 consumes two message bytes per loop iteration.
_PAIR_HI = tuple(_advance16(v << 8) for v in range(256))
_PAIR_LO = tuple(_advance16(v) for v in range(256))


def crc16(data: bytes, init: int = CRC16_INIT) -> int:
    """CRC-16/CCITT-FALSE over ``data``."""
    crc = init
    hi, lo = _PAIR_HI, _PAIR_LO  # local bindings: this runs twice per frame
    for i in range(0, len(data) - 1, 2):
        x = crc ^ (data[i] << 8) ^ data[i + 1]
        crc = hi[x >> 8] ^ lo[x & 0xFF]
    if len(data) & 1:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ data[-1]) & 0xFF]
    return crc


def crc16_bitwise(data: bytes, init: int = CRC16_INIT) -> int:
    """Bit-serial reference implementation (used to cross-check the table)."""
    crc = init
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def append_crc(data: bytes) -> bytes:
    """Return ``data`` with its big-endian CRC-16 appended."""
    crc = crc16(data)
    return data + bytes([(crc >> 8) & 0xFF, crc & 0xFF])


def check_crc(framed: bytes) -> bool:
    """Verify a buffer produced by :func:`append_crc`.

    Checking a CRC-appended message yields a fixed residue; comparing against
    a recomputed CRC keeps the code obvious.
    """
    if len(framed) < 2:
        return False
    expect = crc16(framed[:-2])
    return framed[-2] == (expect >> 8) & 0xFF and framed[-1] == expect & 0xFF
