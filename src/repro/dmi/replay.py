"""Transmit replay buffer for DMI error recovery.

Every transmitted frame is held in the replay buffer until the peer's ACK
for its sequence ID comes back.  When an ACK goes missing, the transmitter
replays from the oldest unacknowledged frame — no explicit NAK or frame ID is
ever sent by the receiver (Section 2.3); the FRTL measured at training time
tells the transmitter how long an ACK can legitimately take.

The buffer depth bounds how many frames may be in flight unacknowledged;
when it fills, transmission stalls, which is how link-level flow control
emerges.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, List, Optional, Tuple

from ..errors import ProtocolError, ReplayError
from .frames import SEQ_MOD, seq_distance

DEFAULT_DEPTH = 32


class ReplayBuffer:
    """Holds transmitted frames awaiting acknowledgement, in sequence order.

    Entries are opaque to the buffer — the endpoint stores :class:`Frame`
    objects (not packed bytes) so retransmissions can refresh the
    piggybacked ACK field: replaying a frame with its *original* ACK value
    would, after a sequence-space wrap, alias into the peer's live window
    and retire frames that were never delivered.
    """

    def __init__(self, depth: int = DEFAULT_DEPTH):
        if not 0 < depth < SEQ_MOD:
            # depth must leave sequence-number headroom to disambiguate
            # duplicates from new frames after a wrap.
            raise ProtocolError(
                f"replay depth must be in (0, {SEQ_MOD}), got {depth}"
            )
        self.depth = depth
        self._pending: "OrderedDict[int, Tuple[Any, int]]" = OrderedDict()
        # Stats
        self.total_acked = 0
        self.total_replayed = 0

    @property
    def is_full(self) -> bool:
        return len(self._pending) >= self.depth

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def hold(self, seq: int, frame: Any, sent_at_ps: int) -> None:
        """Record a just-transmitted frame until its ACK arrives."""
        if self.is_full:
            raise ReplayError("replay buffer overflow: transmitter failed to stall")
        if seq in self._pending:
            raise ProtocolError(f"sequence {seq} already awaiting ACK")
        self._pending[seq] = (frame, sent_at_ps)

    def ack(self, seq: int) -> int:
        """Process a cumulative ACK for ``seq``; returns frames retired.

        ACKs are cumulative: acknowledging sequence N retires every held
        frame up to and including N (ACKs themselves can be lost; a later
        ACK must cover for earlier ones).
        """
        if not self._pending:
            return 0
        if seq not in self._pending:
            # ACK for a frame already retired (duplicate after replay) — fine.
            return 0
        retired = 0
        while self._pending:
            head_seq = next(iter(self._pending))
            self._pending.popitem(last=False)
            retired += 1
            if head_seq == seq:
                break
        self.total_acked += retired
        return retired

    def oldest_unacked(self) -> Optional[Tuple[int, bytes, int]]:
        """The oldest frame still awaiting ACK: (seq, frame, sent_at_ps)."""
        if not self._pending:
            return None
        seq = next(iter(self._pending))
        frame, sent_at = self._pending[seq]
        return seq, frame, sent_at

    def frames_for_replay(self) -> List[Tuple[int, Any]]:
        """All held frames in transmit order, for retransmission."""
        self.total_replayed += len(self._pending)
        return [(seq, frame) for seq, (frame, _) in self._pending.items()]

    def mark_resent(self, now_ps: int) -> None:
        """Reset the hold timestamps after a replay (restart ACK timers)."""
        for seq in list(self._pending):
            frame, _ = self._pending[seq]
            self._pending[seq] = (frame, now_ps)

    def covers(self, seq: int) -> bool:
        """Whether ``seq`` is currently held (useful for assertions)."""
        return seq in self._pending

    def span(self) -> int:
        """Sequence-space distance from oldest to newest held frame."""
        if len(self._pending) < 2:
            return len(self._pending)
        seqs = list(self._pending)
        return seq_distance(seqs[0], seqs[-1]) + 1
