"""Lane scrambling for the DMI high-speed serial channel.

High-speed SerDes links scramble transmitted bits to guarantee transition
density for clock recovery and to spread spectral energy.  This matters to
ConTutto specifically: the FPGA's receivers recover the sampling clock from
the data (CDR), unlike Centaur's forwarded-clock capture, so the data stream
must keep transitioning (Section 3.2).

We implement the PCIe-style additive LFSR scrambler, polynomial
x^23 + x^21 + x^16 + x^8 + x^5 + x^2 + 1, seeded per lane so each lane's
keystream differs.  Scrambling is an involution when transmitter and
receiver streams are synchronized: ``descramble(scramble(x)) == x``, and a
bit error in transit stays a single-bit error (additive scramblers do not
multiply errors — important for the CRC/replay behaviour to be realistic).
"""

from __future__ import annotations

LFSR_WIDTH = 23
LFSR_TAPS = (23, 21, 16, 8, 5, 2)  # feedback taps, x^0 implied
LFSR_SEED_BASE = 0x3C_5A71  # arbitrary nonzero base; lane index is mixed in


class LfsrStream:
    """A deterministic keystream generator for one lane."""

    def __init__(self, lane: int, seed_base: int = LFSR_SEED_BASE):
        seed = (seed_base ^ (lane * 0x9E37)) & ((1 << LFSR_WIDTH) - 1)
        if seed == 0:
            seed = 1  # an all-zero LFSR state is a fixed point; avoid it
        self.state = seed

    def next_bit(self) -> int:
        bit = 0
        for tap in LFSR_TAPS:
            bit ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | bit) & ((1 << LFSR_WIDTH) - 1)
        return bit

    def next_byte(self) -> int:
        value = 0
        for i in range(8):
            value |= self.next_bit() << i
        return value


class LaneScrambler:
    """Scrambles/descrambles the byte stream crossing one serial lane.

    Transmitter and receiver each hold one of these with the same lane index;
    as long as they stay frame-synchronized (which link training establishes)
    their keystreams match.
    """

    def __init__(self, lane: int, seed_base: int = LFSR_SEED_BASE):
        self.lane = lane
        self._stream = LfsrStream(lane, seed_base)

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with the lane keystream (same op scrambles and descrambles)."""
        return bytes(b ^ self._stream.next_byte() for b in data)

    def resync(self) -> None:
        """Reset the keystream to the start-of-training state."""
        self._stream = LfsrStream(self.lane)


class BundleScrambler:
    """Scrambler state for a whole lane bundle, byte-striped across lanes.

    Frames are serialized to bytes and striped round-robin across the lanes of
    the bundle, mirroring how 16 UI of each physical lane make up one frame.
    """

    def __init__(self, num_lanes: int, seed_base: int = LFSR_SEED_BASE):
        if num_lanes <= 0:
            raise ValueError(f"lane bundle needs at least one lane, got {num_lanes}")
        self.num_lanes = num_lanes
        self._lanes = [LaneScrambler(i, seed_base) for i in range(num_lanes)]

    def process(self, data: bytes) -> bytes:
        """Scramble (or descramble) a serialized frame, striped across lanes."""
        out = bytearray(len(data))
        for i, byte in enumerate(data):
            lane = self._lanes[i % self.num_lanes]
            out[i] = byte ^ lane._stream.next_byte()
        return bytes(out)

    def resync(self) -> None:
        for lane in self._lanes:
            lane.resync()
