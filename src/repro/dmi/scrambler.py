"""Lane scrambling for the DMI high-speed serial channel.

High-speed SerDes links scramble transmitted bits to guarantee transition
density for clock recovery and to spread spectral energy.  This matters to
ConTutto specifically: the FPGA's receivers recover the sampling clock from
the data (CDR), unlike Centaur's forwarded-clock capture, so the data stream
must keep transitioning (Section 3.2).

We implement the PCIe-style additive LFSR scrambler, polynomial
x^23 + x^21 + x^16 + x^8 + x^5 + x^2 + 1, seeded per lane so each lane's
keystream differs.  Scrambling is an involution when transmitter and
receiver streams are synchronized: ``descramble(scramble(x)) == x``, and a
bit error in transit stays a single-bit error (additive scramblers do not
multiply errors — important for the CRC/replay behaviour to be realistic).

Performance
-----------
Scrambling runs twice per frame on every wire transfer, which made the
bit-serial LFSR the single hottest code in the whole simulator (~48
interpreted operations per wire byte; see ``benchmarks/BENCH_kernel.json``).
The hot path is therefore table-driven: the 8-step state transition and the
output byte are both GF(2)-linear in the 23-bit state, so three 256-entry
tables (one per state byte) advance the LFSR a whole byte per lookup, lane
keystreams are generated in cached blocks, and frames are XORed against the
keystream with single big-int operations.  ``LfsrStream.next_bit`` /
``next_byte`` keep the historical bit-serial implementation as the golden
reference — ``tests/dmi/test_scrambler_golden.py`` proves both paths emit
identical keystreams, byte for byte.
"""

from __future__ import annotations

LFSR_WIDTH = 23
LFSR_TAPS = (23, 21, 16, 8, 5, 2)  # feedback taps, x^0 implied
LFSR_SEED_BASE = 0x3C_5A71  # arbitrary nonzero base; lane index is mixed in

_LFSR_MASK = (1 << LFSR_WIDTH) - 1


def _step_bits(state: int, nbits: int) -> tuple:
    """Bit-serial reference: advance ``state`` by ``nbits``; return (state, out).

    Output bits are packed LSB-first, matching ``LfsrStream.next_byte``.
    """
    out = 0
    for i in range(nbits):
        bit = 0
        for tap in LFSR_TAPS:
            bit ^= (state >> (tap - 1)) & 1
        state = ((state << 1) | bit) & _LFSR_MASK
        out |= bit << i
    return state, out


def _build_byte_tables(nbits: int) -> tuple:
    """Per-state-byte tables advancing the LFSR ``nbits`` bits per lookup.

    The ``nbits``-step map ``state -> (state', output_bits)`` is
    GF(2)-linear, so the images of the three state bytes XOR together to the
    full-state image.  Each entry packs ``(state' << nbits) | output_bits``
    — XOR distributes over the packed fields, so one XOR chain combines
    both at once.
    """
    tables = []
    for byte_index in range(3):
        table = []
        for value in range(256):
            state, out = _step_bits((value << (8 * byte_index)) & _LFSR_MASK, nbits)
            table.append((state << nbits) | out)
        tables.append(tuple(table))
    return tuple(tables)


#: single-byte tables (odd trailing byte of a block)
_TAB0, _TAB1, _TAB2 = _build_byte_tables(8)
#: double-byte tables (the block-generation loop emits two bytes per lookup)
_TAB16_0, _TAB16_1, _TAB16_2 = _build_byte_tables(16)


class LfsrStream:
    """A deterministic keystream generator for one lane."""

    def __init__(self, lane: int, seed_base: int = LFSR_SEED_BASE):
        seed = (seed_base ^ (lane * 0x9E37)) & _LFSR_MASK
        if seed == 0:
            seed = 1  # an all-zero LFSR state is a fixed point; avoid it
        self.state = seed

    def next_bit(self) -> int:
        """Bit-serial reference step (golden path; the hot path uses tables)."""
        self.state, bit = _step_bits(self.state, 1)
        return bit

    def next_byte(self) -> int:
        value = 0
        for i in range(8):
            value |= self.next_bit() << i
        return value

    def skip_bytes(self, nbytes: int) -> None:
        """Advance the state past ``nbytes`` output bytes, discarding them.

        Same table walk as :meth:`next_block` minus the output stores — the
        lazy-skip path uses it when keystream bytes were never observed.
        """
        state = self.state
        tab0, tab1, tab2 = _TAB16_0, _TAB16_1, _TAB16_2
        for _ in range(nbytes >> 1):
            state = (
                tab0[state & 0xFF] ^ tab1[(state >> 8) & 0xFF] ^ tab2[state >> 16]
            ) >> 16
        if nbytes & 1:
            state = (
                _TAB0[state & 0xFF] ^ _TAB1[(state >> 8) & 0xFF] ^ _TAB2[state >> 16]
            ) >> 8
        self.state = state

    def next_block(self, nbytes: int) -> bytes:
        """Table-driven fast path: ``nbytes`` keystream bytes in one call.

        Advances ``self.state`` exactly as ``nbytes`` calls to
        :meth:`next_byte` would — one packed table lookup per byte instead
        of 48 interpreted bit operations.
        """
        state = self.state
        out = bytearray(nbytes)
        tab0, tab1, tab2 = _TAB16_0, _TAB16_1, _TAB16_2
        for i in range(0, nbytes - 1, 2):
            packed = tab0[state & 0xFF] ^ tab1[(state >> 8) & 0xFF] ^ tab2[state >> 16]
            state = packed >> 16
            out[i] = packed & 0xFF
            out[i + 1] = (packed >> 8) & 0xFF
        if nbytes & 1:
            packed = _TAB0[state & 0xFF] ^ _TAB1[(state >> 8) & 0xFF] ^ _TAB2[state >> 16]
            state = packed >> 8
            out[nbytes - 1] = packed & 0xFF
        self.state = state
        return bytes(out)


class LaneScrambler:
    """Scrambles/descrambles the byte stream crossing one serial lane.

    Transmitter and receiver each hold one of these with the same lane index;
    as long as they stay frame-synchronized (which link training establishes)
    their keystreams match.  Keystream is generated in cached blocks so the
    per-frame cost is a buffer slice, not an LFSR step per byte.
    """

    #: keystream bytes generated per buffer refill
    BLOCK_BYTES = 1024

    def __init__(self, lane: int, seed_base: int = LFSR_SEED_BASE):
        self.lane = lane
        self.seed_base = seed_base
        self._stream = LfsrStream(lane, seed_base)
        self._buffer = b""
        self._pos = 0

    def keystream(self, nbytes: int) -> bytes:
        """Consume the next ``nbytes`` of this lane's keystream."""
        buffer, pos = self._buffer, self._pos
        end = pos + nbytes
        if end <= len(buffer):
            self._pos = end
            return buffer[pos:end]
        tail = buffer[pos:]
        need = nbytes - len(tail)
        block = self._stream.next_block(max(need, self.BLOCK_BYTES))
        self._buffer = block
        self._pos = need
        return tail + block[:need] if tail else block[:need]

    def skip(self, nbytes: int) -> None:
        """Advance past ``nbytes`` of keystream without materializing it."""
        pos = self._pos + nbytes
        if pos <= len(self._buffer):
            self._pos = pos
        else:
            self._stream.skip_bytes(pos - len(self._buffer))
            self._buffer = b""
            self._pos = 0

    def process(self, data: bytes) -> bytes:
        """XOR ``data`` with the lane keystream (same op scrambles and descrambles)."""
        n = len(data)
        if n == 0:
            return b""
        key = int.from_bytes(self.keystream(n), "little")
        return (int.from_bytes(data, "little") ^ key).to_bytes(n, "little")

    def resync(self) -> None:
        """Reset the keystream to the start-of-training state."""
        self._stream = LfsrStream(self.lane, self.seed_base)
        self._buffer = b""
        self._pos = 0


class BundleScrambler:
    """Scrambler state for a whole lane bundle, byte-striped across lanes.

    Frames are serialized to bytes and striped round-robin across the lanes of
    the bundle, mirroring how 16 UI of each physical lane make up one frame.
    """

    def __init__(self, num_lanes: int, seed_base: int = LFSR_SEED_BASE):
        if num_lanes <= 0:
            raise ValueError(f"lane bundle needs at least one lane, got {num_lanes}")
        self.num_lanes = num_lanes
        self._lanes = [LaneScrambler(i, seed_base) for i in range(num_lanes)]
        #: frames skipped lazily, tallied as {frame_length: count}
        self._pending_skips: dict = {}

    def keystream_frame(self, n: int) -> bytes:
        """The next ``n`` striped keystream bytes (advances every lane used).

        Byte ``i`` meets lane ``i % num_lanes``; each lane consumes exactly
        the keystream bytes its stripe positions demand, so per-lane stream
        state stays identical to the historical byte-at-a-time loop.
        """
        if n == 0:
            return b""
        if self._pending_skips:
            self._reify_skips()
        num = self.num_lanes
        lanes = self._lanes
        if num == 1:
            key = self._lanes[0].keystream(n)
        elif n <= num:
            # Short frame: one keystream byte from each of the first n lanes.
            # Integer indexing beats building n one-byte slices.
            striped = bytearray(n)
            for lane_index in range(n):
                lane = lanes[lane_index]
                pos = lane._pos
                buffer = lane._buffer
                if pos < len(buffer):
                    lane._pos = pos + 1
                    striped[lane_index] = buffer[pos]
                else:
                    striped[lane_index] = lane.keystream(1)[0]
            key = striped
        else:
            striped = bytearray(n)
            base, rem = divmod(n, num)
            for lane_index, lane in enumerate(lanes):
                count = base + 1 if lane_index < rem else base
                # Inlined LaneScrambler.keystream buffer hit: with 14-21
                # lanes per bundle this runs per lane per frame, and the
                # method call + refill bookkeeping dominate otherwise.
                pos = lane._pos
                end = pos + count
                buffer = lane._buffer
                if end <= len(buffer):
                    lane._pos = end
                    striped[lane_index::num] = buffer[pos:end]
                else:
                    striped[lane_index::num] = lane.keystream(count)
            key = striped
        return bytes(key)

    def skip_frame(self, n: int) -> None:
        """Advance every lane past one ``n``-byte frame without building the
        striped keystream.

        The link uses this on clean frames, where additive scrambling
        provably cancels end to end and the keystream bytes are never
        observed.  Skips are lazy: a lane's state after skipping depends
        only on its *total* skipped byte count, not the frame interleave,
        so this just tallies ``{frame_length: frames}`` — O(1) per frame —
        and :meth:`_reify_skips` settles the totals into lane state in the
        rare case the keystream is needed again (fault injection arming an
        error model mid-run).
        """
        if n:
            pending = self._pending_skips
            pending[n] = pending.get(n, 0) + 1

    def _reify_skips(self) -> None:
        """Fold pending skipped frames into per-lane stream state, leaving
        every lane byte-identical to having generated the keystream."""
        num = self.num_lanes
        lanes = self._lanes
        for n, times in self._pending_skips.items():
            base, rem = divmod(n, num)
            for lane_index, lane in enumerate(lanes):
                count = (base + 1 if lane_index < rem else base) * times
                if count == 0:
                    break  # stripe counts only step down once, at lane rem
                lane.skip(count)
        self._pending_skips.clear()

    def process(self, data: bytes) -> bytes:
        """Scramble (or descramble) a serialized frame, striped across lanes."""
        n = len(data)
        if n == 0:
            return b""
        return (
            int.from_bytes(data, "little") ^ int.from_bytes(self.keystream_frame(n), "little")
        ).to_bytes(n, "little")

    def resync(self) -> None:
        self._pending_skips.clear()
        for lane in self._lanes:
            lane.resync()
