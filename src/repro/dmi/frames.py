"""DMI frame formats and (de)serialization.

Frames are the unit of transfer and of error recovery on the DMI channel.
Per Section 2.2 the downstream link has 14 data/command lanes and the
upstream link 21, operations are on 128-byte cache lines, and four packets
constitute one frame.  We model a frame as 16 unit intervals on every lane:

* downstream frame: 14 lanes x 16 UI = 224 bits = 28 bytes on the wire,
* upstream frame:   21 lanes x 16 UI = 336 bits = 42 bytes on the wire.

Each frame carries a 6-bit sequence ID, an optional ACK for a previously
received frame, a CRC-16, and a payload:

* downstream: at most one command header plus one 16-byte write-data chunk
  (so a full 128B write occupies 8 frames, command riding in the first);
* upstream: at most two *done* notifications plus one 32-byte read-data
  chunk (a 128B read response spans 4 data frames, then a done).

The logical packed encoding used for CRC/scrambling/error-injection is a few
bytes larger than the physical frame (we keep field encodings byte-aligned
for auditability); the *timing* model always uses the physical wire size.

Every frame crossing the wire is packed once and unpacked once, so the
classes here sit on the simulator's hot path: they use ``__slots__``, pack
through a single ``b"".join``, and unpack by index instead of peeling
slices (see ``docs/kernel.md``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ProtocolError
from .commands import Opcode
from .crc import append_crc, check_crc, crc16

SEQ_MOD = 64               # 6-bit frame sequence ID space
NO_ACK = 0xFF              # ack byte value meaning "no ACK in this frame"

DOWN_LANES = 14
UP_LANES = 21
FRAME_UI = 16              # unit intervals per frame, per lane

DOWN_WIRE_BYTES = DOWN_LANES * FRAME_UI // 8   # 28
UP_WIRE_BYTES = UP_LANES * FRAME_UI // 8       # 42

DOWN_DATA_CHUNK = 16       # write-data bytes per downstream frame
UP_DATA_CHUNK = 32         # read-data bytes per upstream frame

_OPCODE_CODES = {op: i for i, op in enumerate(Opcode)}
_CODE_OPCODES = {i: op for op, i in _OPCODE_CODES.items()}


class CommandHeader:
    """Command portion of a downstream frame."""

    __slots__ = ("opcode", "tag", "address")

    def __init__(self, opcode: Opcode, tag: int, address: int):
        self.opcode = opcode
        self.tag = tag
        self.address = address

    def pack(self) -> bytes:
        if not 0 <= self.address < (1 << 48):
            raise ProtocolError(f"address {self.address:#x} exceeds 48-bit space")
        return bytes([_OPCODE_CODES[self.opcode], self.tag]) + self.address.to_bytes(6, "big")

    @classmethod
    def unpack(cls, raw: bytes) -> "CommandHeader":
        if len(raw) != 8:
            raise ProtocolError(f"command header must be 8 bytes, got {len(raw)}")
        code = raw[0]
        if code not in _CODE_OPCODES:
            raise ProtocolError(f"unknown opcode code {code}")
        return cls(_CODE_OPCODES[code], raw[1], int.from_bytes(raw[2:8], "big"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommandHeader):
            return NotImplemented
        return (
            self.opcode is other.opcode
            and self.tag == other.tag
            and self.address == other.address
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommandHeader(opcode={self.opcode!r}, tag={self.tag!r}, "
            f"address={self.address!r})"
        )


class DataChunk:
    """A slice of cache-line data in flight, identified by (tag, offset)."""

    __slots__ = ("tag", "offset", "data")

    def __init__(self, tag: int, offset: int, data: bytes):
        self.tag = tag
        self.offset = offset          # byte offset within the 128B line
        self.data = data

    def pack(self) -> bytes:
        if len(self.data) > 255:
            raise ProtocolError("data chunk too large to encode")
        return bytes([self.tag, self.offset, len(self.data)]) + self.data

    @classmethod
    def _parse(cls, buf: bytes, pos: int) -> Tuple["DataChunk", int]:
        """Decode one chunk at ``buf[pos:]``; returns (chunk, next position)."""
        if len(buf) < pos + 3:
            raise ProtocolError("truncated data chunk")
        length = buf[pos + 2]
        end = pos + 3 + length
        if len(buf) < end:
            raise ProtocolError("truncated data chunk payload")
        return cls(buf[pos], buf[pos + 1], buf[pos + 3 : end]), end

    @classmethod
    def unpack(cls, raw: bytes) -> Tuple["DataChunk", bytes]:
        chunk, end = cls._parse(raw, 0)
        return chunk, raw[end:]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataChunk):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.offset == other.offset
            and self.data == other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataChunk(tag={self.tag!r}, offset={self.offset!r}, data={self.data!r})"


class DoneNotice:
    """Command-completion notification carried upstream."""

    __slots__ = ("tag",)

    def __init__(self, tag: int):
        self.tag = tag

    def pack(self) -> bytes:
        return bytes([self.tag])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DoneNotice):
            return NotImplemented
        return self.tag == other.tag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DoneNotice(tag={self.tag!r})"


class Frame:
    """Common behaviour of downstream and upstream frames."""

    __slots__ = ("seq_id", "ack_seq")

    wire_bytes: int = 0
    direction: str = ""

    def __init__(self, seq_id: int, ack_seq: Optional[int] = None):
        if not 0 <= seq_id < SEQ_MOD:
            raise ProtocolError(f"sequence ID {seq_id} outside 6-bit space")
        if ack_seq is not None and not 0 <= ack_seq < SEQ_MOD:
            raise ProtocolError(f"ACK sequence {ack_seq} outside 6-bit space")
        self.seq_id = seq_id
        self.ack_seq = ack_seq

    def _pack_header(self, kind: int) -> bytes:
        ack = NO_ACK if self.ack_seq is None else self.ack_seq
        return bytes([kind, self.seq_id, ack])

    def pack(self) -> bytes:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ack = f" ack={self.ack_seq}" if self.ack_seq is not None else ""
        return f"<{type(self).__name__} seq={self.seq_id}{ack}>"


def _check_framed(framed: bytes, kind: int, what: str) -> bytes:
    """CRC-check a packed frame in one pass; returns the body (CRC stripped)."""
    raw = framed[:-2]
    if len(framed) < 2:
        raise ProtocolError(f"{what} failed CRC")
    expect = crc16(raw)
    if framed[-2] != expect >> 8 or framed[-1] != expect & 0xFF:
        raise ProtocolError(f"{what} failed CRC")
    if len(raw) < 4 or raw[0] != kind:
        raise ProtocolError(f"not a {what}")
    return raw


class DownstreamFrame(Frame):
    """Processor -> buffer frame: optional command + optional write-data chunk."""

    __slots__ = ("command", "chunk")

    KIND = 0xD0
    wire_bytes = DOWN_WIRE_BYTES
    direction = "downstream"

    def __init__(
        self,
        seq_id: int,
        ack_seq: Optional[int] = None,
        command: Optional[CommandHeader] = None,
        chunk: Optional[DataChunk] = None,
    ):
        super().__init__(seq_id, ack_seq)
        if chunk is not None and len(chunk.data) > DOWN_DATA_CHUNK:
            raise ProtocolError(
                f"downstream chunk of {len(chunk.data)}B exceeds {DOWN_DATA_CHUNK}B"
            )
        self.command = command
        self.chunk = chunk

    @property
    def is_idle(self) -> bool:
        return self.command is None and self.chunk is None

    def pack(self) -> bytes:
        command, chunk = self.command, self.chunk
        ack = NO_ACK if self.ack_seq is None else self.ack_seq
        flags = (1 if command else 0) | (2 if chunk else 0)
        parts = [bytes((self.KIND, self.seq_id, ack, flags))]
        if command:
            parts.append(command.pack())
        if chunk:
            parts.append(chunk.pack())
        return append_crc(b"".join(parts))

    @classmethod
    def unpack(cls, framed: bytes) -> "DownstreamFrame":
        raw = _check_framed(framed, cls.KIND, "downstream frame")
        flags = raw[3]
        ack_byte = raw[2]
        pos = 4
        command = None
        if flags & 1:
            command = CommandHeader.unpack(raw[4:12])
            pos = 12
        chunk = None
        if flags & 2:
            chunk, pos = DataChunk._parse(raw, pos)
        if pos != len(raw):
            raise ProtocolError("trailing bytes in downstream frame")
        return cls(raw[1], None if ack_byte == NO_ACK else ack_byte, command, chunk)


class UpstreamFrame(Frame):
    """Buffer -> processor frame: up to two dones + optional read-data chunk."""

    __slots__ = ("dones", "chunk")

    KIND = 0xD1
    wire_bytes = UP_WIRE_BYTES
    direction = "upstream"

    def __init__(
        self,
        seq_id: int,
        ack_seq: Optional[int] = None,
        dones: Optional[List[DoneNotice]] = None,
        chunk: Optional[DataChunk] = None,
    ):
        super().__init__(seq_id, ack_seq)
        self.dones = list(dones or [])
        if len(self.dones) > 2:
            raise ProtocolError("an upstream frame carries at most two dones")
        if chunk is not None and len(chunk.data) > UP_DATA_CHUNK:
            raise ProtocolError(
                f"upstream chunk of {len(chunk.data)}B exceeds {UP_DATA_CHUNK}B"
            )
        self.chunk = chunk

    @property
    def is_idle(self) -> bool:
        return not self.dones and self.chunk is None

    def pack(self) -> bytes:
        dones, chunk = self.dones, self.chunk
        ack = NO_ACK if self.ack_seq is None else self.ack_seq
        head = bytearray((self.KIND, self.seq_id, ack, len(dones)))
        for done in dones:
            head.append(done.tag)
        head.append(1 if chunk else 0)
        body = bytes(head) + chunk.pack() if chunk else bytes(head)
        return append_crc(body)

    @classmethod
    def unpack(cls, framed: bytes) -> "UpstreamFrame":
        raw = _check_framed(framed, cls.KIND, "upstream frame")
        ack_byte = raw[2]
        n_dones = raw[3]
        if len(raw) < 4 + n_dones + 1:
            raise ProtocolError("truncated upstream frame")
        dones = [DoneNotice(raw[4 + i]) for i in range(n_dones)]
        pos = 4 + n_dones
        has_chunk = raw[pos]
        pos += 1
        chunk = None
        if has_chunk:
            chunk, pos = DataChunk._parse(raw, pos)
        if pos != len(raw):
            raise ProtocolError("trailing bytes in upstream frame")
        return cls(raw[1], None if ack_byte == NO_ACK else ack_byte, dones, chunk)


class TrainingFrame(Frame):
    """Signature frame used during link training to measure FRTL.

    The processor and the buffer each transmit frames with specific
    signatures and compute the latency between two such frames
    (Section 2.3).  Training frames sit outside the sequence/ACK machinery:
    they carry a signature ID instead of participating in replay.
    """

    __slots__ = ("signature", "echoed")

    KIND = 0xD2
    wire_bytes = DOWN_WIRE_BYTES  # same 16 UI cadence in either direction
    direction = "training"

    def __init__(self, signature: int, echoed: bool = False):
        super().__init__(seq_id=0, ack_seq=None)
        if not 0 <= signature < (1 << 16):
            raise ProtocolError(f"training signature {signature} exceeds 16 bits")
        self.signature = signature
        self.echoed = echoed

    def pack(self) -> bytes:
        body = bytes([self.KIND, 0, NO_ACK, 1 if self.echoed else 0])
        body += self.signature.to_bytes(2, "big")
        return append_crc(body)

    @classmethod
    def unpack(cls, framed: bytes) -> "TrainingFrame":
        if not check_crc(framed):
            raise ProtocolError("training frame failed CRC")
        raw = framed[:-2]
        if len(raw) != 6 or raw[0] != cls.KIND:
            raise ProtocolError("not a training frame")
        return cls(int.from_bytes(raw[4:6], "big"), echoed=bool(raw[3]))


def frame_kind(framed: bytes) -> Optional[int]:
    """Peek the kind byte of a packed frame (``None`` if too short)."""
    return framed[0] if framed else None


def next_seq(seq: int) -> int:
    """The sequence ID following ``seq`` (wraps at :data:`SEQ_MOD`)."""
    return (seq + 1) % SEQ_MOD


def seq_distance(older: int, newer: int) -> int:
    """Frames from ``older`` (exclusive) to ``newer`` (inclusive), mod wrap."""
    return (newer - older) % SEQ_MOD
