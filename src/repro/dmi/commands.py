"""DMI memory commands.

The primary DMI commands (Section 2.2) operate on 128-byte cache lines:

* full cache-line read,
* full cache-line write,
* partial cache-line write, executed as an atomic read-modify-write.

ConTutto's FPGA extends the command set (Section 4.2/4.3) with operations
Centaur does not implement:

* ``FLUSH`` — drain outstanding writes to the memory devices (required by
  the persistent-memory software stack),
* fine-grained in-line acceleration ops: ``MIN_STORE``, ``MAX_STORE``,
  ``CSWAP`` (conditional swap), executed by augmented command engines.

A command is identified in flight by its *tag* (0–31); see
:mod:`repro.dmi.tags`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import AlignmentError, ProtocolError
from ..units import CACHE_LINE_BYTES


class Opcode(enum.Enum):
    """DMI command opcodes (base protocol + ConTutto extensions)."""

    READ = "read"                  # full 128B cache-line read
    WRITE = "write"                # full 128B cache-line write
    PARTIAL_WRITE = "partial_write"  # read-modify-write of a 128B line
    FLUSH = "flush"                # ConTutto extension: drain write queue
    MIN_STORE = "min_store"        # ConTutto in-line accel: store min(mem, data)
    MAX_STORE = "max_store"        # ConTutto in-line accel: store max(mem, data)
    CSWAP = "cswap"                # ConTutto in-line accel: conditional swap

    @property
    def is_extension(self) -> bool:
        """True for commands only the FPGA buffer implements (not Centaur)."""
        return self in _EXTENSION_OPS

    @property
    def has_downstream_data(self) -> bool:
        """True if the processor sends a data payload with the command."""
        return self in (
            Opcode.WRITE,
            Opcode.PARTIAL_WRITE,
            Opcode.MIN_STORE,
            Opcode.MAX_STORE,
            Opcode.CSWAP,
        )

    @property
    def returns_data(self) -> bool:
        """True if the buffer returns cache-line data upstream."""
        return self in (Opcode.READ, Opcode.CSWAP)

    @property
    def is_rmw(self) -> bool:
        """True if execution requires read + merge + write at the buffer."""
        return self in (
            Opcode.PARTIAL_WRITE,
            Opcode.MIN_STORE,
            Opcode.MAX_STORE,
            Opcode.CSWAP,
        )


_EXTENSION_OPS = frozenset(
    {Opcode.FLUSH, Opcode.MIN_STORE, Opcode.MAX_STORE, Opcode.CSWAP}
)


@dataclass
class Command:
    """One memory command as issued on the DMI channel.

    ``address`` is a buffer-local byte address, 128B-aligned.  For write-class
    commands ``data`` carries the full 128-byte payload; for partial writes
    ``byte_enable`` selects which bytes within the line are merged.
    """

    opcode: Opcode
    address: int
    tag: int
    data: Optional[bytes] = None
    byte_enable: Optional[bytes] = field(default=None, repr=False)
    #: attribution journey id (host-side only; never serialized into
    #: frames — the buffer side recovers it from the (channel, tag)
    #: binding in the journey tracker).  Not part of command identity.
    journey: Optional[int] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.address % CACHE_LINE_BYTES != 0 and self.opcode is not Opcode.FLUSH:
            raise AlignmentError(
                f"{self.opcode.value} address {self.address:#x} not 128B-aligned"
            )
        if not 0 <= self.tag < 32:
            raise ProtocolError(f"tag {self.tag} outside the 32-tag window")
        if self.opcode.has_downstream_data:
            if self.data is None or len(self.data) != CACHE_LINE_BYTES:
                raise ProtocolError(
                    f"{self.opcode.value} requires a {CACHE_LINE_BYTES}B payload"
                )
        elif self.data is not None:
            raise ProtocolError(f"{self.opcode.value} must not carry data")
        if self.opcode is Opcode.PARTIAL_WRITE:
            if self.byte_enable is None or len(self.byte_enable) != CACHE_LINE_BYTES:
                raise ProtocolError(
                    "partial_write requires a 128B byte-enable mask"
                )
        elif self.byte_enable is not None:
            raise ProtocolError(f"{self.opcode.value} must not carry byte enables")


@dataclass
class Response:
    """Completion sent by the buffer back to the processor.

    Every command eventually yields a *done* for its tag; read-class commands
    additionally return the cache-line ``data`` (in frames preceding the done).
    """

    tag: int
    opcode: Opcode
    data: Optional[bytes] = None

    def __post_init__(self) -> None:
        if not 0 <= self.tag < 32:
            raise ProtocolError(f"tag {self.tag} outside the 32-tag window")
        if self.opcode.returns_data:
            if self.data is None or len(self.data) != CACHE_LINE_BYTES:
                raise ProtocolError(
                    f"{self.opcode.value} response requires a {CACHE_LINE_BYTES}B payload"
                )
        elif self.data is not None:
            raise ProtocolError(f"{self.opcode.value} response must not carry data")
