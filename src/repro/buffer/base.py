"""Common interface for memory buffers terminating a DMI channel.

A memory buffer receives assembled :class:`~repro.dmi.commands.Command`
objects from the channel's command layer, executes them against its memory
ports, and calls ``respond`` with a :class:`~repro.dmi.commands.Response`.
Two implementations exist:

* :class:`~repro.buffer.centaur.Centaur` — the production ASIC model,
* :class:`~repro.fpga.contutto.ConTuttoBuffer` — the FPGA design.

The buffer is a protocol *slave*: it never initiates commands (Section 2.3).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..dmi.commands import Command, Opcode, Response
from ..errors import ProtocolError
from ..sim import Simulator, StatsRegistry
from ..telemetry import probe

RespondFn = Callable[[Response], None]


class MemoryBuffer:
    """Abstract DMI memory buffer."""

    #: human-readable kind used by firmware presence detection
    kind: str = "abstract"

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.stats = StatsRegistry()

    # -- DmiChannel integration ------------------------------------------------

    def handle_command(self, command: Command, respond: RespondFn) -> None:
        """Entry point wired as the channel's ``buffer_handler``."""
        self.stats.counter(f"cmd.{command.opcode.value}").add()
        started = self.sim.now_ps

        def respond_and_record(response: Response) -> None:
            self.stats.latency("service").record(self.sim.now_ps - started)
            trace = probe.session
            if trace is not None:
                trace.complete(
                    "buffer", f"{self.kind}.{command.opcode.value}",
                    started, self.sim.now_ps, {"addr": command.address},
                )
                trace.count(f"buffer.{self.kind}.commands")
                trace.record("buffer.service_ps", self.sim.now_ps - started)
            respond(response)

        self._execute(command, respond_and_record)

    def _execute(self, command: Command, respond: RespondFn) -> None:
        raise NotImplementedError

    # -- characteristics used by training / firmware -----------------------------

    def endpoint_overheads(self):
        """(tx_overhead_ps, rx_overhead_ps, replay_prep_ps, freeze) for the endpoint."""
        raise NotImplementedError

    def supports(self, opcode: Opcode) -> bool:
        """Whether this buffer implements ``opcode`` (extensions are FPGA-only)."""
        return not opcode.is_extension

    def _reject_unsupported(self, command: Command) -> None:
        if not self.supports(command.opcode):
            raise ProtocolError(
                f"{self.name}: {command.opcode.value} not implemented by {self.kind}"
            )

    @property
    def capacity_bytes(self) -> int:
        raise NotImplementedError
