"""The Centaur memory buffer's 16 MB eDRAM cache.

Each Centaur carries a 16 MB on-chip cache "to support prefetching and
improve system performance" (Section 2.1).  ConTutto's FPGA design omits it
for simplicity — one of the reasons the FPGA's latency "is not
representative of that of the Centaur chip".

The model is a set-associative write-back cache with LRU replacement and an
optional next-line prefetcher.  It is functional (it holds real line
contents) so the Centaur model's correctness does not depend on the cache
being transparent by construction — dirty lines really are written back.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..telemetry import probe
from ..units import CACHE_LINE_BYTES, MIB


@dataclass
class _Line:
    data: bytes
    dirty: bool = False


class BufferCache:
    """Set-associative write-back cache with LRU and next-line prefetch."""

    def __init__(
        self,
        capacity_bytes: int = 16 * MIB,
        ways: int = 16,
        line_bytes: int = CACHE_LINE_BYTES,
        prefetch_next_line: bool = True,
    ):
        if capacity_bytes % (ways * line_bytes) != 0:
            raise ConfigurationError(
                "cache capacity must be a multiple of ways x line size"
            )
        self.capacity_bytes = capacity_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = capacity_bytes // (ways * line_bytes)
        self.prefetch_next_line = prefetch_next_line
        # each set: OrderedDict tag -> _Line, LRU at the front
        self._sets: List["OrderedDict[int, _Line]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        #: resident line count, maintained incrementally — the occupancy
        #: sampler reads it every period, and walking thousands of sets
        #: per sample dominated sampling cost
        self.lines_held = 0
        # Stats
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.prefetches_issued = 0
        self.prefetch_hits = 0
        self._prefetched_tags: set = set()

    # -- geometry ------------------------------------------------------------

    def _index(self, addr: int) -> Tuple[int, int]:
        line_no = addr // self.line_bytes
        return line_no % self.num_sets, line_no // self.num_sets

    def _line_addr(self, set_no: int, tag: int) -> int:
        return (tag * self.num_sets + set_no) * self.line_bytes

    # -- operations -----------------------------------------------------------

    def lookup(self, addr: int) -> Optional[bytes]:
        """Probe for the line containing ``addr``; LRU-promotes on hit."""
        set_no, tag = self._index(addr)
        line = self._sets[set_no].get(tag)
        trace = probe.session
        if line is None:
            self.misses += 1
            if trace is not None:
                trace.count("buffer.cache.misses")
            return None
        self._sets[set_no].move_to_end(tag)
        self.hits += 1
        if trace is not None:
            trace.count("buffer.cache.hits")
        if (set_no, tag) in self._prefetched_tags:
            self.prefetch_hits += 1
            self._prefetched_tags.discard((set_no, tag))
        return line.data

    def fill(self, addr: int, data: bytes, dirty: bool = False) -> Optional[Tuple[int, bytes]]:
        """Install a line; returns ``(victim_addr, victim_data)`` if a dirty
        line had to be evicted (the caller must write it back)."""
        if len(data) != self.line_bytes:
            raise ConfigurationError(
                f"cache fill must be one {self.line_bytes}B line"
            )
        set_no, tag = self._index(addr)
        assoc_set = self._sets[set_no]
        victim = None
        if tag not in assoc_set:
            if len(assoc_set) >= self.ways:
                victim_tag, victim_line = assoc_set.popitem(last=False)
                self._prefetched_tags.discard((set_no, victim_tag))
                if victim_line.dirty:
                    self.writebacks += 1
                    trace = probe.session
                    if trace is not None:
                        trace.count("buffer.cache.writebacks")
                    victim = (self._line_addr(set_no, victim_tag), victim_line.data)
            else:
                self.lines_held += 1
        assoc_set[tag] = _Line(data, dirty)
        assoc_set.move_to_end(tag)
        return victim

    def update(self, addr: int, data: bytes) -> bool:
        """Write a full line if present (marks dirty); returns hit/miss."""
        set_no, tag = self._index(addr)
        assoc_set = self._sets[set_no]
        trace = probe.session
        if tag not in assoc_set:
            if trace is not None:
                trace.count("buffer.cache.write_misses")
            return False
        assoc_set[tag] = _Line(data, dirty=True)
        assoc_set.move_to_end(tag)
        if trace is not None:
            trace.count("buffer.cache.write_hits")
        return True

    def next_line_candidate(self, addr: int) -> Optional[int]:
        """Address worth prefetching after a miss at ``addr`` (or ``None``)."""
        if not self.prefetch_next_line:
            return None
        nxt = addr + self.line_bytes
        set_no, tag = self._index(nxt)
        if tag in self._sets[set_no]:
            return None
        return nxt

    def note_prefetch(self, addr: int) -> None:
        """Mark a line just filled as prefetched (for accuracy stats)."""
        self.prefetches_issued += 1
        self._prefetched_tags.add(self._index(addr))

    def drain_dirty(self) -> List[Tuple[int, bytes]]:
        """Remove and return every dirty line (flush path)."""
        out = []
        for set_no, assoc_set in enumerate(self._sets):
            for tag in list(assoc_set):
                line = assoc_set[tag]
                if line.dirty:
                    out.append((self._line_addr(set_no, tag), line.data))
                    line.dirty = False
        return out

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
