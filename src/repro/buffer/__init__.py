"""Memory buffers: common interface, eDRAM cache, and the Centaur ASIC model."""

from .base import MemoryBuffer, RespondFn
from .cache import BufferCache
from .centaur import NUM_DDR_PORTS, Centaur
from .config import (
    CONSERVATIVE,
    DEFAULT,
    FUNCTION_MATCHED,
    LATENCY_OPTIMIZED,
    RELAXED,
    TABLE2_CONFIGS,
    CentaurConfig,
)

__all__ = [
    "BufferCache",
    "CONSERVATIVE",
    "Centaur",
    "CentaurConfig",
    "DEFAULT",
    "FUNCTION_MATCHED",
    "LATENCY_OPTIMIZED",
    "MemoryBuffer",
    "NUM_DDR_PORTS",
    "RELAXED",
    "RespondFn",
    "TABLE2_CONFIGS",
]
