"""The Centaur memory-buffer ASIC model.

Centaur terminates one DMI channel and drives four DDR ports, with a 16 MB
eDRAM cache in front of them (Section 2.1).  It is the baseline every
ConTutto measurement is compared against: low, knob-tunable latency, high
internal clock (4:1 link mux ratio), hardware replay with no freeze tricks.

Cache-line addresses interleave across the four DDR ports so streaming
workloads use all ports' bandwidth.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..dmi.commands import Command, Opcode, Response
from ..errors import ConfigurationError
from ..memory import MemoryController, MemoryControllerConfig
from ..memory.device import MemoryDevice
from ..sim import Simulator
from ..units import CACHE_LINE_BYTES, ns_to_ps
from .base import MemoryBuffer, RespondFn
from .cache import BufferCache
from .config import DEFAULT, CentaurConfig

NUM_DDR_PORTS = 4


class Centaur(MemoryBuffer):
    """Production POWER8 memory buffer (ASIC)."""

    kind = "centaur"

    #: endpoint (MBI-equivalent) overheads: the ASIC runs a 4:1 mux at
    #: 2.4 GHz, so frame handling costs ~1 ns each way and replay switches
    #: within the host's window without any workaround.
    TX_OVERHEAD_PS = 1_000
    RX_OVERHEAD_PS = 1_000
    REPLAY_PREP_PS = 2_000

    def __init__(
        self,
        sim: Simulator,
        devices: List[MemoryDevice],
        config: CentaurConfig = DEFAULT,
        name: str = "centaur0",
    ):
        super().__init__(sim, name)
        if not 1 <= len(devices) <= NUM_DDR_PORTS:
            raise ConfigurationError(
                f"{name}: Centaur drives 1..{NUM_DDR_PORTS} DDR ports, "
                f"got {len(devices)}"
            )
        self.config = config
        # Centaur's memory controllers are full-custom ASIC pipelines — far
        # shallower than the FPGA's soft controller.
        mc_config = MemoryControllerConfig(
            command_overhead_ps=5_000, response_overhead_ps=4_000
        )
        self.ports = [
            MemoryController(sim, dev, mc_config, name=f"{name}.mc{i}")
            for i, dev in enumerate(devices)
        ]
        self.cache: Optional[BufferCache] = None
        if config.cache_enabled:
            self.cache = BufferCache(prefetch_next_line=config.prefetch_enabled)

    # -- geometry ----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return sum(port.device.capacity_bytes for port in self.ports)

    def _route(self, addr: int) -> Tuple[int, int]:
        """Interleave cache lines across DDR ports; returns (port, local addr)."""
        line = addr // CACHE_LINE_BYTES
        port = line % len(self.ports)
        local_line = line // len(self.ports)
        return port, local_line * CACHE_LINE_BYTES

    # -- command execution ----------------------------------------------------

    def _execute(self, command: Command, respond: RespondFn) -> None:
        self._reject_unsupported(command)
        delay = self.config.pipeline_ps + self.config.extra_delay_ps
        self.sim.call_after(delay, self._after_pipeline, command, respond)

    def _after_pipeline(self, command: Command, respond: RespondFn) -> None:
        if command.opcode is Opcode.READ:
            self._do_read(command, respond)
        elif command.opcode is Opcode.WRITE:
            self._do_write(command, respond)
        elif command.opcode is Opcode.PARTIAL_WRITE:
            self._do_partial_write(command, respond)
        else:  # pragma: no cover - _reject_unsupported guards this
            raise AssertionError(command.opcode)

    # READ ---------------------------------------------------------------------

    def _do_read(self, command: Command, respond: RespondFn) -> None:
        if self.cache is not None:
            cached = self.cache.lookup(command.address)
            if cached is not None:
                self.sim.call_after(
                    self.config.cache_hit_ps + self.config.response_ps,
                    respond,
                    Response(command.tag, Opcode.READ, cached),
                )
                return
        port_no, local = self._route(command.address)
        done = self.ports[port_no].submit_read(
            local, CACHE_LINE_BYTES, journey=command.journey
        )
        done.add_waiter(
            lambda data: self._finish_read(command, data, respond)
        )

    def _finish_read(self, command: Command, data: bytes, respond: RespondFn) -> None:
        if self.cache is not None:
            self._install(command.address, data, dirty=False)
            prefetch_addr = self.cache.next_line_candidate(command.address)
            if prefetch_addr is not None and prefetch_addr < self.capacity_bytes:
                self._issue_prefetch(prefetch_addr)
        self.sim.call_after(
            self.config.response_ps,
            respond,
            Response(command.tag, Opcode.READ, data),
        )

    def _issue_prefetch(self, addr: int) -> None:
        # prefetches (like victim writebacks in _install) stay journey-free:
        # they serve the cache, not the command on the wire
        port_no, local = self._route(addr)
        done = self.ports[port_no].submit_read(local, CACHE_LINE_BYTES)

        def fill(data: bytes, _addr=addr) -> None:
            self._install(_addr, data, dirty=False)
            assert self.cache is not None
            self.cache.note_prefetch(_addr)

        done.add_waiter(fill)

    # WRITE --------------------------------------------------------------------

    def _do_write(self, command: Command, respond: RespondFn) -> None:
        assert command.data is not None
        if self.cache is not None and self.cache.update(command.address, command.data):
            # write hit: absorbed by the eDRAM cache
            self.sim.call_after(
                self.config.cache_hit_ps + self.config.response_ps,
                respond,
                Response(command.tag, Opcode.WRITE),
            )
            return
        port_no, local = self._route(command.address)
        done = self.ports[port_no].submit_write(
            local, command.data, journey=command.journey
        )
        done.add_waiter(
            lambda _: self.sim.call_after(
                self.config.response_ps, respond, Response(command.tag, Opcode.WRITE)
            )
        )

    def _do_partial_write(self, command: Command, respond: RespondFn) -> None:
        assert command.data is not None and command.byte_enable is not None
        port_no, local = self._route(command.address)

        def merge_and_write(old: bytes) -> None:
            merged = bytearray(old)
            for i, enabled in enumerate(command.byte_enable):
                if enabled:
                    merged[i] = command.data[i]
            if self.cache is not None:
                self.cache.update(command.address, bytes(merged))
            done = self.ports[port_no].submit_write(
                local, bytes(merged), journey=command.journey
            )
            done.add_waiter(
                lambda _: self.sim.call_after(
                    self.config.response_ps,
                    respond,
                    Response(command.tag, Opcode.PARTIAL_WRITE),
                )
            )

        if self.cache is not None:
            cached = self.cache.lookup(command.address)
            if cached is not None:
                merge_and_write(cached)
                return
        self.ports[port_no].submit_read(
            local, CACHE_LINE_BYTES, journey=command.journey
        ).add_waiter(merge_and_write)

    # -- cache install with victim writeback --------------------------------------

    def _install(self, addr: int, data: bytes, dirty: bool) -> None:
        assert self.cache is not None
        victim = self.cache.fill(addr, data, dirty)
        if victim is not None:
            victim_addr, victim_data = victim
            port_no, local = self._route(victim_addr)
            self.ports[port_no].submit_write(local, victim_data)

    # -- endpoint characteristics -----------------------------------------------

    def endpoint_overheads(self):
        return (self.TX_OVERHEAD_PS, self.RX_OVERHEAD_PS, self.REPLAY_PREP_PS, False)
