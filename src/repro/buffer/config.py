"""Centaur latency configurations (the Table 2 knobs).

Table 2 of the paper characterizes DB2 BLU under four Centaur settings whose
measured latency-to-memory spans 79 ns to 249 ns.  The exact knob names are
IBM-internal; what the experiment depends on is that Centaur exposes
performance-related settings that trade latency, and that the measured
single-command round trip lands at those four points.  We expose the same
axis as explicit configuration values:

* ``LATENCY_OPTIMIZED`` — every fast path on (79 ns measured in Table 2),
* ``DEFAULT``           — shipping configuration (83 ns),
* ``CONSERVATIVE``      — conservative scheduling (116 ns),
* ``RELAXED``           — debug-grade pacing (249 ns).

The ``extra_delay_ps`` values are calibrated so the full-system measured
latency (host path + DMI + Centaur + DDR3) reproduces the table; see
``repro.core.calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import ns_to_ps


@dataclass(frozen=True)
class CentaurConfig:
    """Performance-related knobs of the Centaur memory buffer."""

    name: str = "default"
    #: internal command-path latency of the ASIC (decode -> MC issue)
    pipeline_ps: int = 4_000
    #: response-path latency (data return -> upstream frame)
    response_ps: int = 3_000
    #: additional command pacing inserted by the knob setting
    extra_delay_ps: int = 0
    #: 16 MB eDRAM cache enabled
    cache_enabled: bool = True
    #: next-line prefetch into the eDRAM cache
    prefetch_enabled: bool = True
    #: eDRAM cache hit latency
    cache_hit_ps: int = 5_000

    def with_extra_delay(self, extra_ps: int, name: str = "") -> "CentaurConfig":
        return replace(self, extra_delay_ps=extra_ps, name=name or self.name)


#: Table 2 presets.  extra_delay deltas track the measured latency deltas
#: (79 -> 83 -> 116 -> 249 ns) since the rest of the path is unchanged.
LATENCY_OPTIMIZED = CentaurConfig(name="latency_optimized", extra_delay_ps=0)
DEFAULT = CentaurConfig(name="default", extra_delay_ps=ns_to_ps(4))
CONSERVATIVE = CentaurConfig(name="conservative", extra_delay_ps=ns_to_ps(37))
RELAXED = CentaurConfig(name="relaxed", extra_delay_ps=ns_to_ps(170))

TABLE2_CONFIGS = [LATENCY_OPTIMIZED, DEFAULT, CONSERVATIVE, RELAXED]

#: The Centaur configuration functionally matched to ConTutto's base design
#: (cache off, prefetch off) — the paper measured 293 ns for this against
#: ConTutto's 390 ns.
FUNCTION_MATCHED = CentaurConfig(
    name="function_matched",
    cache_enabled=False,
    prefetch_enabled=False,
    extra_delay_ps=ns_to_ps(196),
)
