"""Request classes: what one service operation costs in the simulated stack.

A tenant's requests belong to one *class* — a short, named operation
against the simulated memory or storage stack.  Classes are not modeled
with synthetic constants: each one is **calibrated** by actually running
its operation in the discrete-event simulator and recording per-sample
(service time, success) pairs.  The service loop then draws from that
empirical profile, so queueing dynamics inherit the stack's real latency
distribution — including tail samples and, when a fault plan is
installed, degraded and failed operations.

Determinism contract: :func:`calibrate` is a pure function of
``(klass, samples, seed, fault plan)``.  The shard runner derives the
calibration seed from the repetition seed and the class name only —
never from the shard index — so every shard of a sharded run computes
byte-identical profiles and the merged run table is shard-invariant.

Classes
-------

``mem_read`` / ``mem_write``
    One 128 B cache-line read/write through the full POWER8 socket →
    DMI → Centaur → DRAM path (random addresses, memory-level
    parallelism of one).
``pointer_chase``
    One hop of a dependent pointer chain — the no-MLP worst case the
    paper flags for latency sensitivity.
``storage_read`` / ``storage_write``
    One 4 KiB block IO against a PCIe-attached NVRAM card
    (fio-style random offsets).
``gpfs_write``
    One synchronous GPFS-style 4 KiB write: filesystem software
    overhead plus the PCIe store visit.

Fault plans bind to the :class:`~repro.core.system.ContuttoSystem`
behind the memory classes; the storage classes run on a bare simulator
with no system to inject into, so a plan leaves them untouched.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.system import CardSpec, ContuttoSystem
from ..errors import ConfigurationError, SimulationError, StorageError
from ..faults import FaultController, FaultPlan
from ..sim import Rng, Simulator
from ..sim.rng import derive_seed
from ..storage import NVRAM_PCIE, PcieAttachedStore
from ..telemetry import probe
from ..units import CACHE_LINE_BYTES, MIB
from ..workloads import GpfsJob, GpfsWriter, TraceSpec, pointer_chase

#: every request class a schedule's tenants may reference
REQUEST_CLASSES = (
    "gpfs_write",
    "mem_read",
    "mem_write",
    "pointer_chase",
    "storage_read",
    "storage_write",
)

#: classes backed by a booted ContuttoSystem (fault plans apply here)
SYSTEM_CLASSES = frozenset({"mem_read", "mem_write", "pointer_chase"})

#: block size of the storage-class IOs
_BLOCK_BYTES = 4096

#: backing-store capacity for the storage classes (small: offsets are
#: random, capacity only bounds the offset space)
_STORE_BYTES = 64 * MIB

#: per-operation sim deadline — generous against any fault window
_OP_TIMEOUT_PS = 10**12


@dataclass(frozen=True)
class ServiceProfile:
    """Calibrated empirical service-time distribution of one class."""

    klass: str
    samples_ps: Tuple[int, ...]
    ok: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.samples_ps or len(self.samples_ps) != len(self.ok):
            raise ConfigurationError(
                f"profile {self.klass!r}: malformed sample set"
            )

    def draw(self, rng: Rng) -> Tuple[int, bool]:
        """One (service time ps, success) draw from the empirical set."""
        i = rng.randint(0, len(self.samples_ps) - 1)
        return self.samples_ps[i], self.ok[i]

    @property
    def mean_ps(self) -> float:
        return sum(self.samples_ps) / len(self.samples_ps)

    def to_dict(self) -> dict:
        return {
            "klass": self.klass,
            "samples_ps": list(self.samples_ps),
            "ok": [int(v) for v in self.ok],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceProfile":
        try:
            return cls(
                data["klass"],
                tuple(int(v) for v in data["samples_ps"]),
                tuple(bool(v) for v in data["ok"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed profile record: {exc}") from exc


def profiles_to_json(profiles: dict) -> str:
    """Canonical JSON of a ``{class: profile}`` map.

    Canonical (sorted keys, no whitespace) because the string rides in
    shard-job kwargs: the result cache keys on it, so the same profiles
    must always serialize to the same bytes.
    """
    return json.dumps(
        {klass: profiles[klass].to_dict() for klass in sorted(profiles)},
        sort_keys=True, separators=(",", ":"),
    )


def profiles_from_json(text: str) -> dict:
    """Parse a ``{class: profile}`` map written by :func:`profiles_to_json`."""
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"bad profiles JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigurationError("profiles JSON must be an object")
    return {klass: ServiceProfile.from_dict(rec) for klass, rec in raw.items()}


def _set_scenario(label: str) -> None:
    """Label journeys begun from here on (no-op when telemetry is off)."""
    trace = probe.session
    if trace is not None and trace.journeys is not None:
        trace.journeys.set_scenario(label)


def _run_op(sim: Simulator, signal) -> bool:
    """Drain one submitted operation; classify its completion value."""
    try:
        value = sim.run_until_signal(signal, timeout_ps=_OP_TIMEOUT_PS)
    except (SimulationError, StorageError):
        return False
    return not isinstance(value, Exception)


def _calibrate_system(
    klass: str, samples: int, seed: int, plan: Optional[FaultPlan]
) -> ServiceProfile:
    """Measure socket-path line operations on a booted Centaur system."""
    _set_scenario(f"service:{klass}:boot")
    system = ContuttoSystem.build([CardSpec(slot=0, kind="centaur")], seed=seed)
    controller = None
    if plan is not None:
        controller = FaultController(
            system.sim, plan, seed=derive_seed(seed, "faults")
        )
        controller.install(system).start()

    region = system.region_for_slot(0)
    rng = Rng(derive_seed(seed, "ops"), f"service.{klass}")
    _set_scenario(f"service:{klass}")
    if klass == "pointer_chase":
        # one calibrated sample per dependent hop of a random chain
        spec = TraceSpec(region.base, min(region.os_size, 256 * 1024), samples)
        addrs = pointer_chase(spec, rng)
        while len(addrs) < samples:          # tiny regions: rewalk the chain
            addrs += addrs[: samples - len(addrs)]
    else:
        lines = region.os_size // CACHE_LINE_BYTES
        addrs = [
            region.base + rng.randint(0, lines - 1) * CACHE_LINE_BYTES
            for _ in range(samples)
        ]

    times: List[int] = []
    oks: List[bool] = []
    payload = bytes(CACHE_LINE_BYTES)
    for addr in addrs:
        t0 = system.sim.now_ps
        if klass == "mem_write":
            signal = system.socket.write_line(addr, payload)
        else:
            signal = system.socket.read_line(addr)
        oks.append(_run_op(system.sim, signal))
        times.append(system.sim.now_ps - t0)
        if controller is not None:
            controller.heal()
    if controller is not None:
        controller.stop()
    return ServiceProfile(klass, tuple(times), tuple(oks))


def _calibrate_storage(klass: str, samples: int, seed: int) -> ServiceProfile:
    """Measure 4 KiB block IOs against a PCIe-attached NVRAM card."""
    sim = Simulator()
    store = PcieAttachedStore(sim, _STORE_BYTES, NVRAM_PCIE, name=f"svc.{klass}")
    rng = Rng(derive_seed(seed, "ops"), f"service.{klass}")
    blocks = _STORE_BYTES // _BLOCK_BYTES
    _set_scenario(f"service:{klass}")
    times: List[int] = []
    oks: List[bool] = []
    for _ in range(samples):
        offset = rng.randint(0, blocks - 1) * _BLOCK_BYTES
        t0 = sim.now_ps
        if klass == "storage_write":
            signal = store.submit_write(offset, _BLOCK_BYTES)
        else:
            signal = store.submit_read(offset, _BLOCK_BYTES)
        oks.append(_run_op(sim, signal))
        times.append(sim.now_ps - t0)
    return ServiceProfile(klass, tuple(times), tuple(oks))


class _DirectWriteStore:
    """Adapter: GPFS writer -> bare block device (offsets wrapped)."""

    def __init__(self, device):
        self.device = device
        self.name = device.name

    def write(self, offset, nbytes):
        return self.device.submit_write(
            offset % self.device.capacity_bytes, nbytes
        )


def _calibrate_gpfs(samples: int, seed: int) -> ServiceProfile:
    """Measure synchronous GPFS-style writes (software path + store)."""
    sim = Simulator()
    store = _DirectWriteStore(
        PcieAttachedStore(sim, _STORE_BYTES, NVRAM_PCIE, name="svc.gpfs")
    )
    writer = GpfsWriter(sim)
    _set_scenario("service:gpfs_write")
    times: List[int] = []
    oks: List[bool] = []
    for i in range(samples):
        job = GpfsJob(total_writes=1, seed=derive_seed(seed, f"op{i}"))
        result = writer.run(store, job)
        times.append(int(result.mean_latency_us * 1e6))
        oks.append(result.errors == 0)
    return ServiceProfile("gpfs_write", tuple(times), tuple(oks))


def calibrate(
    klass: str,
    samples: int,
    seed: int,
    faults: Optional[FaultPlan] = None,
) -> ServiceProfile:
    """Run ``samples`` real sim operations of ``klass``; return its profile."""
    if klass not in REQUEST_CLASSES:
        raise ConfigurationError(
            f"unknown request class {klass!r} "
            f"(known: {', '.join(REQUEST_CLASSES)})"
        )
    if samples < 1:
        raise ConfigurationError("calibration needs at least one sample")
    if klass in SYSTEM_CLASSES:
        return _calibrate_system(klass, samples, seed, faults)
    if klass == "gpfs_write":
        return _calibrate_gpfs(samples, seed)
    return _calibrate_storage(klass, samples, seed)
