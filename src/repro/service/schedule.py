"""Declarative arrival schedules for the open-loop service twin.

A schedule describes *offered load over time* — independent of how fast
the twin can drain it, which is the defining property of open-loop
evaluation: arrivals keep coming whether or not the service keeps up.
The shapes cover the scenarios the run table is meant to chart:

* ``constant`` — a flat plateau (steady-state capacity measurement);
* ``ramp`` — linear growth between two rates (a diurnal rise, a
  find-the-knee sweep);
* ``flash`` — a triangular spike to a peak and back (the flash crowd
  that pushes the service past saturation and into shedding).

Phases are *additive*: the offered rate at time ``t`` is the sum of
every phase active at ``t``, so a diurnal baseline with a flash crowd on
top is two phases, not a new shape.  Tenants split the offered rate by
weight and map it onto a request class (see
:mod:`repro.service.classes`), giving a multi-tenant mix in one stream.

Arrival generation is a thinned Poisson process per tenant, seeded from
``(schedule, seed)`` only — never from shard count or worker identity —
so every shard of a sharded run derives the identical stream and a
merged run table is byte-for-byte reproducible for any shard count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim import Rng
from ..sim.rng import derive_seed

#: schema identifier stamped on schedules and run-table records
SERVICE_SCHEMA = "repro.service/v1"

#: arrival-rate shapes a phase may take
PHASE_KINDS = ("constant", "ramp", "flash")

#: picoseconds per millisecond (schedules are written in ms, the sim
#: kernel and the service loop run in ps)
PS_PER_MS = 1_000_000_000


@dataclass(frozen=True)
class Tenant:
    """One load source: a share of the offered rate bound to a class."""

    name: str
    klass: str
    weight: float = 1.0
    #: sim-kernel operations one request performs (its service time is
    #: the sum of this many calibrated-class draws)
    ops_per_request: int = 1
    #: optional latency objective: this tenant's per-window p99 must stay
    #: at or under this many milliseconds for the window to count as met
    slo_p99_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant needs a name")
        if self.weight <= 0:
            raise ConfigurationError(f"tenant {self.name!r}: weight must be > 0")
        if self.ops_per_request < 1:
            raise ConfigurationError(
                f"tenant {self.name!r}: ops_per_request must be >= 1"
            )
        if self.slo_p99_ms is not None and self.slo_p99_ms <= 0:
            raise ConfigurationError(
                f"tenant {self.name!r}: slo_p99_ms must be > 0 when set"
            )

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "klass": self.klass,
            "weight": self.weight,
            "ops_per_request": self.ops_per_request,
        }
        if self.slo_p99_ms is not None:
            out["slo_p99_ms"] = self.slo_p99_ms
        return out


@dataclass(frozen=True)
class Phase:
    """One additive contribution to the offered arrival rate."""

    kind: str
    start_ms: float
    end_ms: float
    #: constant plateau rate (``constant``)
    rate_rps: float = 0.0
    #: linear endpoints (``ramp``)
    from_rps: float = 0.0
    to_rps: float = 0.0
    #: triangular apex, reached at the phase midpoint (``flash``)
    peak_rps: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ConfigurationError(
                f"unknown phase kind {self.kind!r} (known: {', '.join(PHASE_KINDS)})"
            )
        if self.end_ms <= self.start_ms:
            raise ConfigurationError(
                f"{self.kind} phase: end_ms must be after start_ms"
            )
        rates = (self.rate_rps, self.from_rps, self.to_rps, self.peak_rps)
        if any(r < 0 for r in rates):
            raise ConfigurationError(f"{self.kind} phase: rates must be >= 0")

    def rate_at(self, t_ms: float) -> float:
        """This phase's offered rate at ``t_ms`` (0 outside its bounds)."""
        if t_ms < self.start_ms or t_ms >= self.end_ms:
            return 0.0
        if self.kind == "constant":
            return self.rate_rps
        span = self.end_ms - self.start_ms
        if self.kind == "ramp":
            frac = (t_ms - self.start_ms) / span
            return self.from_rps + (self.to_rps - self.from_rps) * frac
        # flash: triangular spike, apex at the midpoint
        mid = self.start_ms + span / 2
        return self.peak_rps * (1.0 - abs(t_ms - mid) / (span / 2))

    def peak(self) -> float:
        """An upper bound of this phase's rate (exact for all shapes)."""
        if self.kind == "constant":
            return self.rate_rps
        if self.kind == "ramp":
            return max(self.from_rps, self.to_rps)
        return self.peak_rps

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "start_ms": self.start_ms, "end_ms": self.end_ms}
        if self.kind == "constant":
            out["rate_rps"] = self.rate_rps
        elif self.kind == "ramp":
            out["from_rps"] = self.from_rps
            out["to_rps"] = self.to_rps
        else:
            out["peak_rps"] = self.peak_rps
        return out


@dataclass(frozen=True)
class ArrivalSchedule:
    """A complete open-loop scenario: load shape, tenants, service knobs."""

    name: str
    duration_ms: float
    tenants: Tuple[Tenant, ...]
    phases: Tuple[Phase, ...]
    #: run-table window width; rows aggregate per window
    window_ms: float = 10.0
    #: parallel service channels the loop models (the twin's drain rate
    #: is ``servers / mean service time``)
    servers: int = 1
    #: admitted-but-not-started requests the queue holds; arrivals past
    #: it are shed
    queue_limit: int = 64
    #: optional shed-on-wait bound: arrivals whose projected queue delay
    #: exceeds this are shed even when the queue has room
    max_queue_delay_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("schedule needs a name")
        if self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be > 0")
        if self.window_ms <= 0 or self.window_ms > self.duration_ms:
            raise ConfigurationError(
                "window_ms must be in (0, duration_ms]"
            )
        if self.servers < 1:
            raise ConfigurationError("servers must be >= 1")
        if self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        if self.max_queue_delay_ms is not None and self.max_queue_delay_ms <= 0:
            raise ConfigurationError("max_queue_delay_ms must be > 0 when set")
        if not self.tenants:
            raise ConfigurationError("schedule needs at least one tenant")
        if not self.phases:
            raise ConfigurationError("schedule needs at least one phase")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError("tenant names must be unique")

    # -- rate queries -------------------------------------------------------

    def rate_rps(self, t_ms: float) -> float:
        """Total offered arrival rate at ``t_ms`` (all phases, all tenants)."""
        return sum(p.rate_at(t_ms) for p in self.phases)

    def peak_rps(self) -> float:
        """An upper bound of the total offered rate (thinning envelope)."""
        return sum(p.peak() for p in self.phases)

    def windows(self) -> int:
        """Run-table windows covering ``[0, duration_ms)`` (ceil)."""
        return max(1, -(-int(self.duration_ms * PS_PER_MS)
                        // int(self.window_ms * PS_PER_MS)))

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "schema": SERVICE_SCHEMA,
            "name": self.name,
            "duration_ms": self.duration_ms,
            "window_ms": self.window_ms,
            "servers": self.servers,
            "queue_limit": self.queue_limit,
            "tenants": [t.to_dict() for t in self.tenants],
            "phases": [p.to_dict() for p in self.phases],
        }
        if self.max_queue_delay_ms is not None:
            out["max_queue_delay_ms"] = self.max_queue_delay_ms
        return out

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — the form that
        rides in shard-job kwargs (hashable, cache-key stable)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(spec: Dict) -> "ArrivalSchedule":
        known = {"schema", "name", "duration_ms", "window_ms", "servers",
                 "queue_limit", "max_queue_delay_ms", "tenants", "phases"}
        unknown = set(spec) - known
        if unknown:
            raise ConfigurationError(
                f"unknown schedule fields: {', '.join(sorted(unknown))}"
            )
        try:
            tenants = tuple(Tenant(**t) for t in spec.get("tenants", []))
            phases = tuple(Phase(**p) for p in spec.get("phases", []))
        except TypeError as exc:
            raise ConfigurationError(f"bad schedule entry: {exc}") from exc
        return ArrivalSchedule(
            name=spec.get("name", ""),
            duration_ms=spec.get("duration_ms", 0.0),
            window_ms=spec.get("window_ms", 10.0),
            servers=spec.get("servers", 1),
            queue_limit=spec.get("queue_limit", 64),
            max_queue_delay_ms=spec.get("max_queue_delay_ms"),
            tenants=tenants,
            phases=phases,
        )

    @staticmethod
    def from_json(text: str) -> "ArrivalSchedule":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"schedule is not valid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise ConfigurationError("schedule JSON must be an object")
        return ArrivalSchedule.from_dict(spec)

    @staticmethod
    def load(source) -> "ArrivalSchedule":
        """Normalize a schedule from any accepted form."""
        if isinstance(source, ArrivalSchedule):
            return source
        if isinstance(source, dict):
            return ArrivalSchedule.from_dict(source)
        if isinstance(source, str):
            return ArrivalSchedule.from_json(source)
        raise ConfigurationError(
            f"cannot load a schedule from {type(source).__name__}"
        )


@dataclass(frozen=True)
class Arrival:
    """One generated request: global index, arrival time, and identity."""

    index: int
    t_ps: int
    tenant: str
    klass: str
    ops: int


def generate_arrivals(schedule: ArrivalSchedule, seed: int) -> List[Arrival]:
    """The full deterministic arrival stream of one repetition.

    Per-tenant non-homogeneous Poisson processes via thinning: candidate
    gaps are drawn at the tenant's peak rate and accepted with probability
    ``rate(t)/peak``.  Each tenant's stream is seeded from
    ``(seed, tenant name)`` and the merged stream is sorted by
    ``(arrival time, tenant, draw order)`` — a pure function of
    ``(schedule, seed)``, so every shard regenerates it identically.
    """
    total_weight = sum(t.weight for t in schedule.tenants)
    merged: List[Tuple[int, str, int, Tenant]] = []
    for tenant in schedule.tenants:
        rng = Rng(derive_seed(seed, f"tenant.{tenant.name}"), name=tenant.name)
        share = tenant.weight / total_weight
        peak = schedule.peak_rps() * share
        if peak <= 0:
            continue
        t_ms = 0.0
        order = 0
        while True:
            # candidate gaps at the peak rate, expressed per millisecond
            t_ms += rng.expovariate(peak / 1e3)
            if t_ms >= schedule.duration_ms:
                break
            accept = schedule.rate_rps(t_ms) * share / peak
            if rng.chance(accept):
                merged.append((int(t_ms * PS_PER_MS), tenant.name, order, tenant))
                order += 1
    merged.sort(key=lambda m: (m[0], m[1], m[2]))
    return [
        Arrival(index, t_ps, tenant.name, tenant.klass, tenant.ops_per_request)
        for index, (t_ps, _, _, tenant) in enumerate(merged)
    ]
