"""Twin-as-a-service: the simulated stack behind an open-loop load front.

The rest of the repo measures the memory subsystem one experiment at a
time.  This package runs it like an operator would run a fleet: a
declarative **arrival schedule** (diurnal ramps, flash crowds,
multi-tenant mixes) generates an open-loop request stream; **request
classes** calibrate what each operation costs by actually running it in
the simulator; a deterministic **service loop** admits arrivals through
a bounded queue onto ``c`` servers, shedding what will not fit; and a
**run table** reports offered vs achieved throughput, latency
percentiles, shed rate, and occupancy per time window.

Execution shards across campaign workers (one job per repetition ×
shard) and merges exactly — the same schedule and seed produce
byte-identical run tables for any shard count.  ``scripts/
run_service.py`` is the CLI; the format and column reference live in
``docs/service.md``.
"""

from .classes import (
    REQUEST_CLASSES,
    SYSTEM_CLASSES,
    ServiceProfile,
    calibrate,
    profiles_from_json,
    profiles_to_json,
)
from .driver import ServiceDriver, ServiceResult
from .loop import (
    OUTCOME_STATUSES,
    RequestOutcome,
    ServiceLoop,
    run_service,
)
from .schedule import (
    PHASE_KINDS,
    PS_PER_MS,
    SERVICE_SCHEMA,
    Arrival,
    ArrivalSchedule,
    Phase,
    Tenant,
    generate_arrivals,
)
from .shard import (
    CALIBRATION_COLUMNS,
    SHARD_COLUMNS,
    calibrate_classes,
    calibration_seed,
    draw_demand,
    profiles_from_table,
    rep_seed,
    run_service_calibrate,
    run_service_shard,
)
from .table import (
    RUN_TABLE_COLUMNS,
    demand_stream,
    merge_shard_demands,
    render_run_table_csv,
    render_summary,
    run_table_columns,
    run_table_records,
    window_rows,
    write_run_table,
)

__all__ = [
    "Arrival",
    "ArrivalSchedule",
    "CALIBRATION_COLUMNS",
    "OUTCOME_STATUSES",
    "PHASE_KINDS",
    "PS_PER_MS",
    "Phase",
    "REQUEST_CLASSES",
    "RUN_TABLE_COLUMNS",
    "RequestOutcome",
    "SERVICE_SCHEMA",
    "SHARD_COLUMNS",
    "SYSTEM_CLASSES",
    "ServiceDriver",
    "ServiceLoop",
    "ServiceProfile",
    "ServiceResult",
    "Tenant",
    "calibrate",
    "calibrate_classes",
    "calibration_seed",
    "demand_stream",
    "draw_demand",
    "generate_arrivals",
    "merge_shard_demands",
    "profiles_from_json",
    "profiles_from_table",
    "profiles_to_json",
    "render_run_table_csv",
    "render_summary",
    "rep_seed",
    "run_service",
    "run_service_calibrate",
    "run_service_shard",
    "run_table_columns",
    "run_table_records",
    "window_rows",
    "write_run_table",
]
