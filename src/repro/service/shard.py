"""The sharded service worker: one slice of one repetition's demand.

A service run fans out as campaign jobs, one per ``(repetition, shard)``,
after a single **calibration job** per invocation has measured every
request class the schedule references (:func:`run_service_calibrate`).
Each shard worker:

1. regenerates the repetition's **full** arrival stream (a pure function
   of schedule + repetition seed — cheap, and it keeps global request
   indices identical on every shard);
2. deserializes the shared calibration artifact riding in its
   ``profiles`` kwarg — one profile per class, reused by every
   ``(repetition, shard)`` job, so an R-repetition S-shard run performs
   one calibration instead of R × S (without ``profiles`` it falls back
   to self-calibrating with seeds derived from ``(repetition seed,
   class name)``, the pre-artifact behavior);
3. draws every assigned request's service demand from its class profile
   with a per-request rng seeded by the **global** request index.

The worker returns demands, not outcomes: queueing couples every request
to every other, so the bounded-queue service loop runs once at merge
time over the globally ordered stream (:mod:`repro.service.loop`).
Shard assignment is round-robin on the global index (``index % shards``),
which spreads hot windows evenly across workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.results import ResultTable
from ..errors import ConfigurationError
from ..faults import FaultPlan
from ..sim.rng import Rng, derive_seed
from .classes import ServiceProfile, calibrate, profiles_from_json
from .schedule import Arrival, ArrivalSchedule, generate_arrivals

#: columns of the shard demand table (the campaign-visible result)
SHARD_COLUMNS = ["index", "tenant", "class", "service_ps", "ok"]

#: columns of the calibration table (one row per calibrated sample)
CALIBRATION_COLUMNS = ["class", "sample", "service_ps", "ok"]


def rep_seed(seed: int, repetition: int) -> int:
    """The seed one repetition's arrivals and calibrations derive from."""
    return derive_seed(seed, f"rep{repetition}")


def draw_demand(
    arrival: Arrival, profile: ServiceProfile, repetition_seed: int
) -> Tuple[int, bool]:
    """One request's total service demand: ``ops`` profile draws.

    Seeded by the global request index, so the demand of request *i* is
    the same no matter which shard draws it.
    """
    rng = Rng(derive_seed(repetition_seed, f"req{arrival.index}"), "svc.req")
    total_ps = 0
    ok = True
    for _ in range(arrival.ops):
        service_ps, op_ok = profile.draw(rng)
        total_ps += service_ps
        ok = ok and op_ok
    return total_ps, ok


def calibrate_classes(
    classes, samples: int, repetition_seed: int, plan: Optional[FaultPlan]
) -> Dict[str, ServiceProfile]:
    """Profiles for ``classes``, each seeded by (repetition, class) only."""
    return {
        klass: calibrate(
            klass, samples, derive_seed(repetition_seed, f"class.{klass}"), plan
        )
        for klass in sorted(set(classes))
    }


def calibration_seed(seed: int) -> int:
    """The seed the shared (per-invocation) calibration derives from.

    Deliberately **not** repetition-derived: the whole point of the
    shared artifact is that one calibration serves every repetition.
    """
    return derive_seed(seed, "calib")


def run_service_calibrate(
    classes: str = "",
    calib_samples: int = 24,
    faults: Optional[str] = None,
    seed: int = 0,
) -> ResultTable:
    """Campaign experiment: one shared calibration for a service run.

    ``classes`` is a comma-separated, sorted class list (it rides in job
    kwargs so the result cache keys on exactly the classes measured, not
    on schedule timing that doesn't change profiles).  Returns one row
    per calibrated sample; :func:`profiles_from_table` folds the table
    back into :class:`ServiceProfile` objects at merge time.
    """
    wanted = [k for k in classes.split(",") if k]
    if not wanted:
        raise ConfigurationError("calibration needs at least one class")
    plan = FaultPlan.from_json(faults) if faults else None
    profiles = calibrate_classes(
        wanted, calib_samples, calibration_seed(seed), plan
    )
    table = ResultTable(
        f"service calibration ({len(profiles)} classes x "
        f"{calib_samples} samples)",
        list(CALIBRATION_COLUMNS),
    )
    for klass in sorted(profiles):
        profile = profiles[klass]
        for i, (service_ps, ok) in enumerate(
            zip(profile.samples_ps, profile.ok)
        ):
            table.add_row(klass, i, service_ps, int(ok))
    table.add_note(
        "mean service time (ns): " + ", ".join(
            f"{klass}={profiles[klass].mean_ps / 1000:.1f}"
            for klass in sorted(profiles)
        )
    )
    return table


def profiles_from_table(table: ResultTable) -> Dict[str, ServiceProfile]:
    """Rebuild the ``{class: profile}`` map from a calibration table."""
    samples: Dict[str, List[int]] = {}
    oks: Dict[str, List[bool]] = {}
    for row in table.rows:
        record = dict(zip(CALIBRATION_COLUMNS, row))
        samples.setdefault(record["class"], []).append(int(record["service_ps"]))
        oks.setdefault(record["class"], []).append(bool(record["ok"]))
    return {
        klass: ServiceProfile(klass, tuple(samples[klass]), tuple(oks[klass]))
        for klass in samples
    }


def run_service_shard(
    schedule: str = "",
    shard: int = 0,
    shards: int = 1,
    repetition: int = 0,
    calib_samples: int = 24,
    profiles: Optional[str] = None,
    faults: Optional[str] = None,
    seed: int = 0,
) -> ResultTable:
    """Campaign experiment: demands of one shard of one repetition.

    ``schedule`` is the canonical schedule JSON (it rides in job kwargs
    so the result cache keys on schedule content).  ``profiles`` is the
    shared calibration artifact as canonical JSON — when present the
    worker never touches the simulator; when absent it self-calibrates
    per repetition (the legacy path, kept for direct invocation).
    Returns a :class:`ResultTable` with one row per assigned request —
    plain data, so it pickles across the pool boundary and caches like
    any other experiment result.
    """
    if shards < 1 or not 0 <= shard < shards:
        raise ConfigurationError(
            f"bad shard assignment {shard}/{shards} (need 0 <= shard < shards)"
        )
    sched = ArrivalSchedule.load(schedule)
    repetition_seed = rep_seed(seed, repetition)

    arrivals = generate_arrivals(sched, repetition_seed)
    mine: List[Arrival] = [a for a in arrivals if a.index % shards == shard]
    needed = sorted({a.klass for a in mine})
    if profiles is not None:
        shared = profiles_from_json(profiles)
        missing = [k for k in needed if k not in shared]
        if missing:
            raise ConfigurationError(
                f"profiles artifact missing classes: {', '.join(missing)}"
            )
        by_class = shared
    else:
        plan = FaultPlan.from_json(faults) if faults else None
        by_class = calibrate_classes(
            needed, calib_samples, repetition_seed, plan
        )

    table = ResultTable(
        f"service {sched.name} rep={repetition} shard={shard}/{shards}",
        list(SHARD_COLUMNS),
    )
    for arrival in mine:
        service_ps, ok = draw_demand(arrival, by_class[arrival.klass], repetition_seed)
        table.add_row(arrival.index, arrival.tenant, arrival.klass,
                      service_ps, int(ok))
    table.add_note(
        f"{len(mine)}/{len(arrivals)} requests; "
        f"classes: {', '.join(needed)}"
    )
    return table
