"""The sharded service worker: one slice of one repetition's demand.

A service run fans out as campaign jobs, one per ``(repetition, shard)``.
Each shard worker:

1. regenerates the repetition's **full** arrival stream (a pure function
   of schedule + repetition seed — cheap, and it keeps global request
   indices identical on every shard);
2. calibrates the request classes its slice needs, with seeds derived
   from ``(repetition seed, class name)`` only — so profiles are
   byte-identical across shards and shard counts;
3. draws every assigned request's service demand from its class profile
   with a per-request rng seeded by the **global** request index.

The worker returns demands, not outcomes: queueing couples every request
to every other, so the bounded-queue service loop runs once at merge
time over the globally ordered stream (:mod:`repro.service.loop`).
Shard assignment is round-robin on the global index (``index % shards``),
which spreads hot windows evenly across workers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.results import ResultTable
from ..errors import ConfigurationError
from ..faults import FaultPlan
from ..sim.rng import Rng, derive_seed
from .classes import ServiceProfile, calibrate
from .schedule import Arrival, ArrivalSchedule, generate_arrivals

#: columns of the shard demand table (the campaign-visible result)
SHARD_COLUMNS = ["index", "tenant", "class", "service_ps", "ok"]


def rep_seed(seed: int, repetition: int) -> int:
    """The seed one repetition's arrivals and calibrations derive from."""
    return derive_seed(seed, f"rep{repetition}")


def draw_demand(
    arrival: Arrival, profile: ServiceProfile, repetition_seed: int
) -> Tuple[int, bool]:
    """One request's total service demand: ``ops`` profile draws.

    Seeded by the global request index, so the demand of request *i* is
    the same no matter which shard draws it.
    """
    rng = Rng(derive_seed(repetition_seed, f"req{arrival.index}"), "svc.req")
    total_ps = 0
    ok = True
    for _ in range(arrival.ops):
        service_ps, op_ok = profile.draw(rng)
        total_ps += service_ps
        ok = ok and op_ok
    return total_ps, ok


def calibrate_classes(
    classes, samples: int, repetition_seed: int, plan: Optional[FaultPlan]
) -> Dict[str, ServiceProfile]:
    """Profiles for ``classes``, each seeded by (repetition, class) only."""
    return {
        klass: calibrate(
            klass, samples, derive_seed(repetition_seed, f"class.{klass}"), plan
        )
        for klass in sorted(set(classes))
    }


def run_service_shard(
    schedule: str = "",
    shard: int = 0,
    shards: int = 1,
    repetition: int = 0,
    calib_samples: int = 24,
    faults: Optional[str] = None,
    seed: int = 0,
) -> ResultTable:
    """Campaign experiment: demands of one shard of one repetition.

    ``schedule`` is the canonical schedule JSON (it rides in job kwargs
    so the result cache keys on schedule content).  Returns a
    :class:`ResultTable` with one row per assigned request — plain data,
    so it pickles across the pool boundary and caches like any other
    experiment result.
    """
    if shards < 1 or not 0 <= shard < shards:
        raise ConfigurationError(
            f"bad shard assignment {shard}/{shards} (need 0 <= shard < shards)"
        )
    sched = ArrivalSchedule.load(schedule)
    plan = FaultPlan.from_json(faults) if faults else None
    repetition_seed = rep_seed(seed, repetition)

    arrivals = generate_arrivals(sched, repetition_seed)
    mine: List[Arrival] = [a for a in arrivals if a.index % shards == shard]
    profiles = calibrate_classes(
        (a.klass for a in mine), calib_samples, repetition_seed, plan
    )

    table = ResultTable(
        f"service {sched.name} rep={repetition} shard={shard}/{shards}",
        list(SHARD_COLUMNS),
    )
    for arrival in mine:
        service_ps, ok = draw_demand(arrival, profiles[arrival.klass], repetition_seed)
        table.add_row(arrival.index, arrival.tenant, arrival.klass,
                      service_ps, int(ok))
    table.add_note(
        f"{len(mine)}/{len(arrivals)} requests; "
        f"classes: {', '.join(sorted(profiles))}"
    )
    return table
