"""One callable service run: calibrate, shard, merge, write artifacts.

``scripts/run_service.py`` and the suite runner both need the same
two-phase orchestration — a single calibration job whose profile
artifact every (repetition, shard) job reuses, then the sharded demand
campaign, then the worker-count-invariant merge into a run table.  This
module is that orchestration as a library, so the CLI stays a thin
argument parser and suites drive services through the exact code path
the CLI exercises.

The driver writes the same artifact set the CLI documents:
``run_table.csv`` / ``run_table.jsonl``, merged ``metrics.jsonl`` and
``attribution.jsonl``, and both campaign manifests.  A failed phase
short-circuits — the result carries the failed outcomes and no run
table is written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigurationError
from .classes import profiles_to_json
from .loop import run_service
from .schedule import ArrivalSchedule, generate_arrivals
from .shard import profiles_from_table, rep_seed
from .table import (
    demand_stream,
    merge_shard_demands,
    render_summary,
    window_rows,
    write_run_table,
)


@dataclass
class ServiceResult:
    """What one service run produced (or where it stopped)."""

    schedule: ArrivalSchedule
    rows: List[dict] = field(default_factory=list)
    calib_report: Optional[object] = None  # CampaignReport
    shard_report: Optional[object] = None  # CampaignReport

    @property
    def failed(self) -> list:
        """Failed job outcomes across both phases, calibration first."""
        failed = []
        for report in (self.calib_report, self.shard_report):
            if report is not None:
                failed.extend(report.failed)
        return failed

    def render(self) -> str:
        """The terminal digest (sparklines + SLO lines)."""
        return render_summary(self.schedule, self.rows)


class ServiceDriver:
    """Run one arrival schedule through the campaign engine.

    Parameters mirror the ``run_service.py`` flags: ``faults`` is the
    canonical fault-plan JSON string (see
    :func:`repro.report.load_fault_plan`), ``cache`` a shared
    :class:`~repro.campaign.ResultCache` or ``None``.
    """

    def __init__(
        self,
        schedule,
        *,
        out_dir,
        seed: int = 0,
        shards: int = 1,
        repetitions: int = 1,
        calib_samples: int = 24,
        faults: Optional[str] = None,
        cache=None,
        timeout_s: Optional[float] = None,
    ) -> None:
        if shards < 1 or repetitions < 1:
            raise ConfigurationError("shards and repetitions must be >= 1")
        if calib_samples < 1:
            raise ConfigurationError("calib_samples must be >= 1")
        self.schedule = ArrivalSchedule.load(schedule)
        self.out_dir = Path(out_dir)
        self.seed = seed
        self.shards = shards
        self.repetitions = repetitions
        self.calib_samples = calib_samples
        self.faults = faults
        self.cache = cache
        self.timeout_s = timeout_s

    def run(self) -> ServiceResult:
        """Execute both phases; write artifacts when everything passes.

        Raises :class:`~repro.errors.ConfigurationError` on a torn shard
        merge (the same failure the CLI reports as ``merge:``).
        """
        # local: campaign.registry imports service.shard, so a module-level
        # campaign import here would close an import cycle
        from ..campaign import CampaignJob, CampaignReport, CampaignRunner

        schedule = self.schedule
        out_dir = self.out_dir
        out_dir.mkdir(parents=True, exist_ok=True)

        calib_kwargs = {
            "classes": ",".join(sorted({t.klass for t in schedule.tenants})),
            "calib_samples": self.calib_samples,
        }
        if self.faults is not None:
            calib_kwargs["faults"] = self.faults

        # phase 1: one shared calibration job for the whole invocation —
        # every (repetition, shard) job below reuses its profiles artifact
        calib_report = CampaignRunner(
            [CampaignJob.make("service_calibrate", calib_kwargs, seed=self.seed)],
            workers=1,
            cache=self.cache,
            manifest_path=str(out_dir / "calib-manifest.jsonl"),
            timeout_s=self.timeout_s,
            base_seed=self.seed,
        ).run()
        if calib_report.failed:
            return ServiceResult(schedule, calib_report=calib_report)
        profiles_json = profiles_to_json(
            profiles_from_table(calib_report.outcomes[0].tables()[0])
        )

        # phase 2: shard demand jobs, none of which touch the simulator
        jobs = [
            CampaignJob.make(
                "service_shard",
                {"schedule": schedule.to_json(), "shards": self.shards,
                 "profiles": profiles_json, "repetition": rep, "shard": shard},
                seed=self.seed,
            )
            for rep in range(self.repetitions)
            for shard in range(self.shards)
        ]
        shard_report = CampaignRunner(
            jobs,
            workers=self.shards,
            cache=self.cache,
            manifest_path=str(out_dir / "manifest.jsonl"),
            timeout_s=self.timeout_s,
            base_seed=self.seed,
        ).run()
        if shard_report.failed:
            return ServiceResult(
                schedule, calib_report=calib_report, shard_report=shard_report
            )

        by_rep = {}
        for outcome in shard_report.outcomes:
            kwargs = outcome.job.kwargs_dict
            by_rep.setdefault(kwargs["repetition"], []).append(
                outcome.tables()[0]
            )
        rows: List[dict] = []
        for rep in sorted(by_rep):
            arrivals = generate_arrivals(schedule, rep_seed(self.seed, rep))
            demands = merge_shard_demands(by_rep[rep])
            outcomes = run_service(schedule, demand_stream(arrivals, demands))
            rows.extend(window_rows(schedule, rep, outcomes))

        write_run_table(
            str(out_dir / "run_table.csv"), str(out_dir / "run_table.jsonl"),
            schedule, self.seed, self.repetitions, rows,
        )
        # artifacts cover both phases: calibration first (it holds the
        # sim journeys), then the shard demand jobs
        combined = CampaignReport(
            outcomes=calib_report.outcomes + shard_report.outcomes,
            wall_clock_s=calib_report.wall_clock_s + shard_report.wall_clock_s,
            workers=self.shards,
        )
        combined.write_telemetry(
            str(out_dir / "metrics.jsonl"),
            params={"schedule": schedule.name, "seed": self.seed,
                    "shards": self.shards, "repetitions": self.repetitions},
        )
        combined.write_attribution(
            str(out_dir / "attribution.jsonl"), name=f"service:{schedule.name}"
        )
        return ServiceResult(
            schedule, rows=rows,
            calib_report=calib_report, shard_report=shard_report,
        )

