"""Run-table artifacts: the service twin's per-window scorecard.

One service run produces two artifacts describing the same grid — a
``run_table.csv`` for spreadsheets and plotting, and a
``repro.service/v1`` JSONL for tooling — with **one row per
(run, repetition, window)**.  Every row answers the capacity question
directly: what was offered, what was achieved, what was shed, and what
did admitted requests pay in queue delay and end-to-end latency.

Shard invariance is a schema property, not an accident: neither artifact
records the shard count, and every value in a row is computed from the
globally merged demand stream.  Rerunning the same schedule and seed
with any ``--shards`` must reproduce both files byte for byte — CI
asserts exactly that.

Column reference lives in ``docs/service.md``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..telemetry import bucket_of, sparkline
from .loop import RequestOutcome
from .schedule import PS_PER_MS, Arrival, ArrivalSchedule, SERVICE_SCHEMA

#: CSV header, in emission order (schedules with tenant SLO targets
#: append one ``slo_<tenant>`` verdict column per target — see
#: :func:`run_table_columns`)
RUN_TABLE_COLUMNS = [
    "run",
    "repetition",
    "window",
    "window_start_ms",
    "window_end_ms",
    "offered",
    "offered_rps",
    "admitted",
    "completed",
    "achieved_rps",
    "shed",
    "shed_rate",
    "failed",
    "failure_rate",
    "queue_delay_mean_ms",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "occupancy_mean",
]


def run_table_columns(schedule: ArrivalSchedule) -> List[str]:
    """The emission column order for one schedule.

    The base grid plus one ``slo_<tenant>`` verdict column per tenant
    that declares ``slo_p99_ms``, in schedule tenant order.  Schedules
    without targets keep the historical column set exactly, so existing
    artifacts and their consumers are untouched.
    """
    return list(RUN_TABLE_COLUMNS) + [
        f"slo_{t.name}" for t in schedule.tenants if t.slo_p99_ms is not None
    ]


def _percentile(ordered: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not ordered:
        return 0
    rank = max(1, -(-int(q * len(ordered) * 100) // 100))  # ceil without floats
    return ordered[min(rank, len(ordered)) - 1]


def merge_shard_demands(tables) -> Dict[int, Tuple[int, bool]]:
    """Fold shard demand tables into ``{global index: (service_ps, ok)}``.

    Accepts the tables in any order and validates that the shards
    together cover a contiguous, non-overlapping index range — a torn
    merge (missing or duplicated shard) fails loudly instead of
    producing a quietly wrong run table.
    """
    demands: Dict[int, Tuple[int, bool]] = {}
    for table in tables:
        for row in table.rows:
            index = int(row[0])
            if index in demands:
                raise ConfigurationError(
                    f"duplicate request index {index} across shards"
                )
            demands[index] = (int(row[3]), bool(row[4]))
    if demands and sorted(demands) != list(range(len(demands))):
        raise ConfigurationError(
            "shard demand tables do not cover a contiguous index range"
        )
    return demands


def demand_stream(
    arrivals: Sequence[Arrival], demands: Dict[int, Tuple[int, bool]]
) -> Iterable[Tuple[Arrival, int, bool]]:
    """Join arrivals with merged demands, in global arrival order."""
    if len(demands) != len(arrivals):
        raise ConfigurationError(
            f"merged demands cover {len(demands)} requests, "
            f"schedule generated {len(arrivals)}"
        )
    for arrival in arrivals:
        service_ps, ok = demands[arrival.index]
        yield arrival, service_ps, ok


def window_rows(
    schedule: ArrivalSchedule,
    repetition: int,
    outcomes: Sequence[RequestOutcome],
) -> List[dict]:
    """The run-table rows of one repetition.

    Arrival-side counts (offered/admitted/shed, queue delay) bin by
    arrival time; completion-side stats (completed, achieved rate,
    latency percentiles) bin by completion time, with completions
    draining after the schedule ends clamped into the last window.
    Occupancy is busy-server-time inside the window over window
    capacity, so a saturated window reads 1.0.

    Tenants with an ``slo_p99_ms`` target get a per-window verdict
    column: ``met``/``missed`` against the tenant's p99 over its own
    completions in the window, or the empty string when the tenant
    completed nothing there (no evidence either way).
    """
    nwin = schedule.windows()
    width_ps = int(schedule.window_ms * PS_PER_MS)
    offered = [0] * nwin
    admitted = [0] * nwin
    shed = [0] * nwin
    failed = [0] * nwin
    completed = [0] * nwin
    queue_delay_ps = [0] * nwin
    latencies: List[List[int]] = [[] for _ in range(nwin)]
    busy_ps = [0.0] * nwin
    slo_tenants = [t for t in schedule.tenants if t.slo_p99_ms is not None]
    tenant_lat: Dict[str, List[List[int]]] = {
        t.name: [[] for _ in range(nwin)] for t in slo_tenants
    }

    for out in outcomes:
        w_arr = bucket_of(out.t_ps, 0, width_ps, nwin)
        offered[w_arr] += 1
        if not out.admitted:
            shed[w_arr] += 1
            continue
        admitted[w_arr] += 1
        queue_delay_ps[w_arr] += out.queue_delay_ps
        if out.status == "failed":
            failed[w_arr] += 1
        w_done = bucket_of(out.done_ps, 0, width_ps, nwin)
        completed[w_done] += 1
        latencies[w_done].append(out.latency_ps)
        if out.tenant in tenant_lat:
            tenant_lat[out.tenant][w_done].append(out.latency_ps)
        # busy time: clip the service interval to each window it spans
        start = out.done_ps - out.service_ps
        if out.service_ps > 0:
            first = bucket_of(start, 0, width_ps, nwin)
            last = bucket_of(out.done_ps - 1, 0, width_ps, nwin)
            for w in range(first, last + 1):
                w0, w1 = w * width_ps, (w + 1) * width_ps
                if w == nwin - 1:
                    w1 = max(w1, out.done_ps)  # last window absorbs overrun
                busy_ps[w] += max(0, min(out.done_ps, w1) - max(start, w0))

    window_s = width_ps / 1e12
    rows = []
    for w in range(nwin):
        ordered = sorted(latencies[w])
        slo_cells = {}
        for tenant in slo_tenants:
            mine = sorted(tenant_lat[tenant.name][w])
            if not mine:
                slo_cells[f"slo_{tenant.name}"] = ""
            else:
                p99_ps = _percentile(mine, 0.99)
                met = p99_ps <= tenant.slo_p99_ms * PS_PER_MS
                slo_cells[f"slo_{tenant.name}"] = "met" if met else "missed"
        rows.append({
            "run": schedule.name,
            "repetition": repetition,
            "window": w,
            "window_start_ms": w * width_ps / PS_PER_MS,
            "window_end_ms": (w + 1) * width_ps / PS_PER_MS,
            "offered": offered[w],
            "offered_rps": offered[w] / window_s,
            "admitted": admitted[w],
            "completed": completed[w],
            "achieved_rps": completed[w] / window_s,
            "shed": shed[w],
            "shed_rate": shed[w] / offered[w] if offered[w] else 0.0,
            "failed": failed[w],
            "failure_rate": failed[w] / admitted[w] if admitted[w] else 0.0,
            "queue_delay_mean_ms": (
                queue_delay_ps[w] / admitted[w] / PS_PER_MS
                if admitted[w] else 0.0
            ),
            "latency_p50_ms": _percentile(ordered, 0.50) / PS_PER_MS,
            "latency_p95_ms": _percentile(ordered, 0.95) / PS_PER_MS,
            "latency_p99_ms": _percentile(ordered, 0.99) / PS_PER_MS,
            "occupancy_mean": busy_ps[w] / (width_ps * schedule.servers),
            **slo_cells,
        })
    return rows


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.6f}"
    return str(value)


def render_run_table_csv(
    rows: Sequence[dict], columns: Optional[Sequence[str]] = None
) -> str:
    """The CSV artifact as a string (fixed column order, 6-digit floats)."""
    columns = list(columns) if columns is not None else RUN_TABLE_COLUMNS
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(_cell(row[col]) for col in columns))
    return "\n".join(lines) + "\n"


def run_table_records(
    schedule: ArrivalSchedule,
    seed: int,
    repetitions: int,
    rows: Sequence[dict],
) -> List[dict]:
    """The ``repro.service/v1`` JSONL records mirroring the CSV.

    The meta record carries the full schedule (provenance) but **not**
    the shard count — the artifact must not vary with worker topology.
    """
    columns = run_table_columns(schedule)
    slo_columns = columns[len(RUN_TABLE_COLUMNS):]
    records: List[dict] = [{
        "schema": SERVICE_SCHEMA,
        "kind": "meta",
        "schedule": schedule.to_dict(),
        "seed": seed,
        "repetitions": repetitions,
        "columns": columns,
    }]
    for row in rows:
        records.append({"kind": "window", **row})
    for rep in range(repetitions):
        mine = [r for r in rows if r["repetition"] == rep]
        offered = sum(r["offered"] for r in mine)
        record = {
            "kind": "repetition",
            "repetition": rep,
            "offered": offered,
            "completed": sum(r["completed"] for r in mine),
            "shed": sum(r["shed"] for r in mine),
            "failed": sum(r["failed"] for r in mine),
            "peak_queue_delay_ms": max(
                (r["queue_delay_mean_ms"] for r in mine), default=0.0
            ),
            "overloaded_windows": sum(
                1 for r in mine
                if r["shed"] > 0 or r["completed"] < r["offered"]
            ),
        }
        if slo_columns:
            record["slo_missed_windows"] = sum(
                1 for r in mine
                if any(r.get(col) == "missed" for col in slo_columns)
            )
        records.append(record)
    return records


def write_run_table(path_csv: str, path_jsonl: str, schedule, seed, repetitions,
                    rows) -> None:
    """Emit both artifacts (newline-terminated, sorted-key JSON)."""
    with open(path_csv, "w", encoding="utf-8") as fh:
        fh.write(render_run_table_csv(rows, run_table_columns(schedule)))
    records = run_table_records(schedule, seed, repetitions, rows)
    with open(path_jsonl, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def render_summary(schedule: ArrivalSchedule, rows: Sequence[dict]) -> str:
    """A terminal digest: offered vs achieved sparklines per repetition."""
    lines = [f"service run: {schedule.name} "
             f"({schedule.servers} server(s), queue<={schedule.queue_limit})"]
    reps = sorted({r["repetition"] for r in rows})
    for rep in reps:
        mine = [r for r in rows if r["repetition"] == rep]
        shed = sum(r["shed"] for r in mine)
        total = sum(r["offered"] for r in mine)
        lines += [
            f"  rep {rep}: offered {total}, shed {shed} "
            f"({100 * shed / total if total else 0:.1f}%)",
            "    offered  " + sparkline([r["offered_rps"] for r in mine]),
            "    achieved " + sparkline([r["achieved_rps"] for r in mine]),
            "    queue ms " + sparkline([r["queue_delay_mean_ms"] for r in mine]),
        ]
        for tenant in schedule.tenants:
            if tenant.slo_p99_ms is None:
                continue
            col = f"slo_{tenant.name}"
            judged = sum(1 for r in mine if r.get(col))
            met = sum(1 for r in mine if r.get(col) == "met")
            lines.append(
                f"    slo {tenant.name}: {met}/{judged} windows met "
                f"(p99 <= {tenant.slo_p99_ms:g} ms)"
            )
    return "\n".join(lines)
