"""The open-loop service core: bounded queue, c servers, shed or wait.

The loop replays an arrival stream against ``c`` parallel service
channels with a bounded admission queue — the G/G/c recurrence that
turns a *latency* model into a *service* model.  Because every
request's service demand was already drawn deterministically (shard
workers do that part), the loop itself is pure integer arithmetic over
two heaps and runs identically wherever it executes.  The merged
campaign therefore computes queueing dynamics **once, over the globally
ordered stream** — never per shard — which is what makes run tables
byte-identical across shard counts.

Overload is measured, not hidden: when arrivals outpace the drain rate
the queue delay grows until the bound trips, and every arrival past the
bound is *shed* with zero service — both effects land in the run table
(``queue_delay_mean_ms`` climbing, ``shed_rate`` > 0, ``achieved_rps``
pinned below ``offered_rps``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from .schedule import PS_PER_MS, Arrival

#: terminal states a request can reach
OUTCOME_STATUSES = ("ok", "failed", "shed")


@dataclass(frozen=True)
class RequestOutcome:
    """One request's fate after the service loop."""

    index: int
    t_ps: int                 # arrival time
    tenant: str
    klass: str
    status: str               # "ok" | "failed" | "shed"
    queue_delay_ps: int       # admission → service start (0 when shed)
    service_ps: int           # service demand actually consumed (0 when shed)
    done_ps: int              # completion (shed: equals arrival time)

    @property
    def admitted(self) -> bool:
        return self.status != "shed"

    @property
    def latency_ps(self) -> int:
        """End-to-end sojourn time; 0 for shed requests."""
        return self.done_ps - self.t_ps if self.admitted else 0


class ServiceLoop:
    """Deterministic bounded-queue G/G/c replay of a demand stream."""

    def __init__(
        self,
        servers: int,
        queue_limit: int,
        max_queue_delay_ps: Optional[int] = None,
    ):
        if servers < 1:
            raise ConfigurationError("servers must be >= 1")
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        self.servers = servers
        self.queue_limit = queue_limit
        self.max_queue_delay_ps = max_queue_delay_ps

    def run(
        self, demands: Iterable[Tuple[Arrival, int, bool]]
    ) -> List[RequestOutcome]:
        """Replay ``(arrival, service_ps, ok)`` triples in arrival order.

        The stream must be sorted by arrival time (the generator's
        global order).  A failed operation still occupies its server for
        the drawn service time — failure is an outcome, not an early
        exit, matching how the sim's storage retries burn real time.
        """
        # server free times; popping the min yields the next idle channel
        free_at: List[int] = [0] * self.servers
        heapq.heapify(free_at)
        # service-start times of admitted-but-not-started requests; the
        # queue length at time t is the count of entries still > t
        pending_starts: List[int] = []
        outcomes: List[RequestOutcome] = []
        last_t = None

        for arrival, service_ps, op_ok in demands:
            t = arrival.t_ps
            if last_t is not None and t < last_t:
                raise ConfigurationError(
                    "service loop needs arrivals in time order"
                )
            last_t = t
            # drain queue entries whose service already started
            while pending_starts and pending_starts[0] <= t:
                heapq.heappop(pending_starts)

            next_free = free_at[0]
            start = max(t, next_free)
            wait = start - t
            shed = len(pending_starts) >= self.queue_limit or (
                self.max_queue_delay_ps is not None
                and wait > self.max_queue_delay_ps
            )
            if shed:
                outcomes.append(
                    RequestOutcome(
                        arrival.index, t, arrival.tenant, arrival.klass,
                        "shed", 0, 0, t,
                    )
                )
                continue

            heapq.heapreplace(free_at, start + service_ps)
            if wait > 0:
                heapq.heappush(pending_starts, start)
            outcomes.append(
                RequestOutcome(
                    arrival.index, t, arrival.tenant, arrival.klass,
                    "ok" if op_ok else "failed",
                    wait, service_ps, start + service_ps,
                )
            )
        return outcomes


def run_service(
    schedule, demands: Iterable[Tuple[Arrival, int, bool]]
) -> List[RequestOutcome]:
    """Convenience: a :class:`ServiceLoop` configured from a schedule."""
    bound = (
        None
        if schedule.max_queue_delay_ms is None
        else int(schedule.max_queue_delay_ms * PS_PER_MS)
    )
    return ServiceLoop(schedule.servers, schedule.queue_limit, bound).run(demands)
