"""Clock domains.

The platform mixes several clocks: the DMI link (8 GHz when ConTutto is
plugged, up to 9.6 GHz with Centaur), the POWER8 memory-bus "nest" (2 GHz),
the FPGA fabric (250 MHz), and the DDR3 interface.  :class:`ClockDomain`
gives each a name and exact integer period, plus helpers to convert between
cycles and picoseconds and to find clock-edge-aligned times.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..units import GHZ, MHZ, period_ps


class ClockDomain:
    """A named clock with an exact integer picosecond period."""

    def __init__(self, name: str, freq_hz: float):
        if freq_hz <= 0:
            raise ConfigurationError(f"clock {name!r}: frequency must be positive")
        self.name = name
        self.freq_hz = freq_hz
        self.period_ps = period_ps(freq_hz)

    def cycles_to_ps(self, cycles: int) -> int:
        """Duration of ``cycles`` whole cycles in picoseconds."""
        return cycles * self.period_ps

    def ps_to_cycles(self, ps: int) -> int:
        """Whole cycles that fit in ``ps`` (floor)."""
        return ps // self.period_ps

    def ps_to_cycles_ceil(self, ps: int) -> int:
        """Cycles needed to cover ``ps`` (ceiling) — e.g. for latency budgets."""
        return -(-ps // self.period_ps)

    def next_edge(self, now_ps: int) -> int:
        """First clock edge at or after ``now_ps`` (edges at multiples of period)."""
        remainder = now_ps % self.period_ps
        if remainder == 0:
            return now_ps
        return now_ps + (self.period_ps - remainder)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClockDomain {self.name} {self.freq_hz / 1e6:.6g} MHz>"


# Canonical platform clocks (Section 3.3 of the paper).
def dmi_link_clock(gbps: float = 8.0) -> ClockDomain:
    """The DMI link clock. ConTutto runs the links at 8 GHz; Centaur up to 9.6."""
    return ClockDomain("dmi_link", gbps * GHZ)


def fabric_clock() -> ClockDomain:
    """ConTutto's FPGA fabric clock: 250 MHz target frequency."""
    return ClockDomain("fpga_fabric", 250 * MHZ)


def nest_clock() -> ClockDomain:
    """POWER8 memory-bus (nest) clock: the paper runs it at 2 GHz."""
    return ClockDomain("p8_nest", 2 * GHZ)


def centaur_core_clock() -> ClockDomain:
    """Centaur's internal logic clock (4:1 mux from a 9.6 GHz link ~ 2.4 GHz)."""
    return ClockDomain("centaur_core", 2.4 * GHZ)
