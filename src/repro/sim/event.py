"""Event primitives for the discrete-event kernel.

Two things live here:

* :class:`ScheduledCall` — an entry in the simulator's event queue binding a
  callback to a simulated timestamp.  Entries are totally ordered by
  ``(time_ps, seq)`` so simultaneous events run in scheduling order, which
  keeps runs deterministic.  The kernel stores heap entries as
  ``(time_ps, seq, call)`` tuples so ``heapq`` sifts compare C integers —
  :meth:`__lt__` is kept only for direct comparisons in user code.
* :class:`Signal` — a wake-up point processes can wait on.  A signal can be
  triggered at most once with an optional value; waiting on an already
  triggered signal resumes immediately.  This matches the "event" concept in
  simpy but with a deliberately smaller surface.
"""

from __future__ import annotations

from typing import Any, Callable, List


class ScheduledCall:
    """A callback scheduled at an absolute simulated time.

    Instances are created by :meth:`repro.sim.kernel.Simulator.call_at` and
    friends; user code normally only keeps them to :meth:`cancel`.
    """

    __slots__ = ("time_ps", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self, time_ps: int, seq: int, fn: Callable[..., Any], args: tuple, sim=None
    ):
        self.time_ps = time_ps
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference to the owning kernel while the entry is still
        # queued; the kernel clears it at dispatch so its O(1) live-event
        # counter only moves for calls actually sitting in the queue.
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                self._sim = None
                sim._live_events -= 1

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time_ps, self.seq) < (other.time_ps, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time_ps}ps {self.fn!r} {state}>"


class Signal:
    """A one-shot wake-up point carrying an optional value.

    Processes wait on a signal by yielding it; :meth:`trigger` resumes all
    waiters at the current simulated time.  Triggering twice raises, because
    a silently re-armed signal is a classic source of lost wake-ups.
    """

    __slots__ = ("name", "_triggered", "_value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`trigger` (``None`` before triggering)."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the signal, waking every waiter with ``value``."""
        if self._triggered:
            raise RuntimeError(f"signal {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)``; called immediately if already fired."""
        if self._triggered:
            callback(self._value)
        else:
            self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"triggered={self._value!r}" if self._triggered else "pending"
        return f"<Signal {self.name!r} {state}>"
