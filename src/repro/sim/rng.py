"""Deterministic randomness for models.

Every stochastic model element (bit-error injection, workload inter-arrival
jitter, address streams) draws from an :class:`Rng` handed to it explicitly.
There is no module-level RNG: two components never share a stream unless the
caller wires them to one, so adding a model cannot perturb another model's
draws — a property the reproducibility tests rely on.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

#: modulus of the child-seed mix; keeps derived seeds in signed-64 range
_SEED_SPACE = 2**63


def derive_seed(base: int, label: str) -> int:
    """Mix ``base`` with ``label`` into a new seed, platform-stably.

    This is the child-seed derivation used by :meth:`Rng.fork` and by the
    campaign scheduler (`repro.campaign`) to give every job an independent
    stream: the result depends only on ``(base, label)``, never on process
    identity, worker assignment, or iteration order.  No ``hash()`` — that
    is salted per process.
    """
    mixed = base % _SEED_SPACE
    for ch in label:
        mixed = (mixed * 1_000_003 + ord(ch)) % _SEED_SPACE
    return mixed


class Rng:
    """A named, seeded random stream (thin wrapper over :mod:`random.Random`)."""

    def __init__(self, seed: int, name: str = ""):
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, label: str) -> "Rng":
        """Derive an independent child stream keyed by ``label``.

        The child seed mixes the parent seed with the label hash in a
        platform-stable way (no ``hash()``, which is salted per process).
        """
        mixed = derive_seed(self.seed, label)
        return Rng(mixed, name=f"{self.name}/{label}" if self.name else label)

    # -- draws -------------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """True with the given probability (0 ⇒ never, 1 ⇒ always)."""
        if probability <= 0:
            return False
        if probability >= 1:
            return True
        return self._random.random() < probability

    def getrandbits(self, bits: int) -> int:
        return self._random.getrandbits(bits)
