"""Deterministic randomness for models.

Every stochastic model element (bit-error injection, workload inter-arrival
jitter, address streams) draws from an :class:`Rng` handed to it explicitly.
There is no module-level RNG: two components never share a stream unless the
caller wires them to one, so adding a model cannot perturb another model's
draws — a property the reproducibility tests rely on.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class Rng:
    """A named, seeded random stream (thin wrapper over :mod:`random.Random`)."""

    def __init__(self, seed: int, name: str = ""):
        self.seed = seed
        self.name = name
        self._random = random.Random(seed)

    def fork(self, label: str) -> "Rng":
        """Derive an independent child stream keyed by ``label``.

        The child seed mixes the parent seed with the label hash in a
        platform-stable way (no ``hash()``, which is salted per process).
        """
        mixed = self.seed
        for ch in label:
            mixed = (mixed * 1_000_003 + ord(ch)) % (2**63)
        return Rng(mixed, name=f"{self.name}/{label}" if self.name else label)

    # -- draws -------------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._random.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._random.randint(lo, hi)

    def random(self) -> float:
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """True with the given probability (0 ⇒ never, 1 ⇒ always)."""
        if probability <= 0:
            return False
        if probability >= 1:
            return True
        return self._random.random() < probability

    def getrandbits(self, bits: int) -> int:
        return self._random.getrandbits(bits)
