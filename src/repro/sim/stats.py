"""Measurement primitives: counters, latency histograms, bandwidth meters.

Models throughout the library record what happened through these classes so
experiments report measured values rather than configured ones — e.g. the
latency numbers in the Table 3 reproduction come out of a
:class:`LatencyRecorder` fed by actual simulated round trips.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..units import S


class Counter:
    """A named monotonic event counter."""

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: cannot add negative {n}")
        self.count += n

    def reset(self) -> None:
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Counter {self.name}={self.count}>"


class LatencyRecorder:
    """Collects latency samples (picoseconds) and summarizes them.

    Keeps every sample; the experiment scales here are small enough (at most a
    few hundred thousand operations) that exact percentiles beat streaming
    approximations.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples_ps: List[int] = []

    def record(self, latency_ps: int) -> None:
        if latency_ps < 0:
            raise ValueError(f"latency recorder {self.name!r}: negative sample")
        self.samples_ps.append(latency_ps)

    @property
    def count(self) -> int:
        return len(self.samples_ps)

    def mean_ps(self) -> float:
        if not self.samples_ps:
            raise ValueError(f"latency recorder {self.name!r}: no samples")
        return sum(self.samples_ps) / len(self.samples_ps)

    def mean_ns(self) -> float:
        return self.mean_ps() / 1_000

    def min_ps(self) -> int:
        return min(self.samples_ps)

    def max_ps(self) -> int:
        return max(self.samples_ps)

    def percentile_ps(self, pct: float) -> int:
        """Nearest-rank percentile, ``pct`` in [0, 100]."""
        if not self.samples_ps:
            raise ValueError(f"latency recorder {self.name!r}: no samples")
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self.samples_ps)
        rank = max(0, math.ceil(pct / 100 * len(ordered)) - 1)
        return ordered[rank]

    def stddev_ps(self) -> float:
        if len(self.samples_ps) < 2:
            return 0.0
        mean = self.mean_ps()
        var = sum((s - mean) ** 2 for s in self.samples_ps) / (len(self.samples_ps) - 1)
        return math.sqrt(var)


class BandwidthMeter:
    """Accumulates bytes moved over a measured window to report GB/s."""

    def __init__(self, name: str = ""):
        self.name = name
        self.bytes_moved = 0
        self._start_ps: Optional[int] = None
        self._end_ps: Optional[int] = None

    def start(self, now_ps: int) -> None:
        self._start_ps = now_ps
        self._end_ps = now_ps
        self.bytes_moved = 0

    def record(self, num_bytes: int, now_ps: int) -> None:
        if self._start_ps is None:
            self._start_ps = now_ps
        self.bytes_moved += num_bytes
        self._end_ps = now_ps

    @property
    def window_ps(self) -> int:
        if self._start_ps is None or self._end_ps is None:
            return 0
        return self._end_ps - self._start_ps

    def gb_per_s(self) -> float:
        """Decimal GB/s over the observed window."""
        window = self.window_ps
        if window <= 0:
            raise ValueError(f"bandwidth meter {self.name!r}: empty window")
        return self.bytes_moved / (window / S) / 1e9


class StatsRegistry:
    """A flat namespace of named stats so components can expose counters."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.latencies: Dict[str, LatencyRecorder] = {}
        self.bandwidths: Dict[str, BandwidthMeter] = {}

    def counter(self, name: str) -> Counter:
        return self.counters.setdefault(name, Counter(name))

    def latency(self, name: str) -> LatencyRecorder:
        return self.latencies.setdefault(name, LatencyRecorder(name))

    def bandwidth(self, name: str) -> BandwidthMeter:
        return self.bandwidths.setdefault(name, BandwidthMeter(name))

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of current values (counts and mean latencies)."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"count.{name}"] = counter.count
        for name, rec in self.latencies.items():
            if rec.count:
                out[f"latency_ns.{name}"] = rec.mean_ns()
        for name, meter in self.bandwidths.items():
            if meter.window_ps > 0 and meter.bytes_moved > 0:
                out[f"gbps.{name}"] = meter.gb_per_s()
        return out
