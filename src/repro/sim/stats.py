"""Measurement primitives: counters, latency histograms, bandwidth meters.

Models throughout the library record what happened through these classes so
experiments report measured values rather than configured ones — e.g. the
latency numbers in the Table 3 reproduction come out of a
:class:`LatencyRecorder` fed by actual simulated round trips.

These are now thin specializations of the :mod:`repro.telemetry.metrics`
primitives (the telemetry subsystem's :class:`~repro.telemetry.registry.
MetricsRegistry` absorbs and supersedes what used to live here), kept for
their picosecond-flavoured APIs and for backward compatibility:

* :class:`Counter` is the telemetry counter, unchanged;
* :class:`LatencyRecorder` is a histogram of picosecond samples.  Its
  historical strict accessors (``mean_ps`` raising on an empty recorder)
  are preserved, while the telemetry-side :meth:`~repro.telemetry.metrics.
  Histogram.percentiles` / ``summary()`` helpers are lenient — an empty
  recorder summarizes to zeros, never ``ValueError`` or ``nan``;
* :class:`StatsRegistry` keeps its flat legacy namespace but is backed by
  a real :class:`~repro.telemetry.registry.MetricsRegistry`, so component
  stats can be exported into a run artifact with :meth:`StatsRegistry.
  export_into`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..telemetry.metrics import Counter, Histogram, Metric
from ..telemetry.registry import MetricsRegistry
from ..units import S

__all__ = [
    "BandwidthMeter",
    "Counter",
    "LatencyRecorder",
    "StatsRegistry",
]


class LatencyRecorder(Histogram):
    """Collects latency samples (picoseconds) and summarizes them.

    Keeps every sample; the experiment scales here are small enough (at most
    a few hundred thousand operations) that exact percentiles beat streaming
    approximations.  ``percentiles()`` / ``summary()`` (inherited) are safe
    on an empty recorder; the ``*_ps`` accessors keep their historical
    strict behaviour of raising when no samples were recorded.
    """

    def record(self, latency_ps: int) -> None:
        if latency_ps < 0:
            raise ValueError(f"latency recorder {self.name!r}: negative sample")
        self.samples.append(latency_ps)

    @property
    def samples_ps(self) -> List[int]:
        """Alias for :attr:`samples` (historical name)."""
        return self.samples

    def mean_ps(self) -> float:
        if not self.samples:
            raise ValueError(f"latency recorder {self.name!r}: no samples")
        return sum(self.samples) / len(self.samples)

    def mean_ns(self) -> float:
        return self.mean_ps() / 1_000

    def min_ps(self) -> int:
        return min(self.samples)

    def max_ps(self) -> int:
        return max(self.samples)

    def percentile_ps(self, pct: float) -> int:
        """Nearest-rank percentile, ``pct`` in [0, 100]; strict on empty."""
        if not self.samples:
            raise ValueError(f"latency recorder {self.name!r}: no samples")
        return self.percentile(pct)

    def stddev_ps(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean_ps()
        var = sum((s - mean) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)


class BandwidthMeter(Metric):
    """Accumulates bytes moved over a measured window to report GB/s."""

    kind = "bandwidth"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self.bytes_moved = 0
        self._start_ps: Optional[int] = None
        self._end_ps: Optional[int] = None

    def start(self, now_ps: int) -> None:
        self._start_ps = now_ps
        self._end_ps = now_ps
        self.bytes_moved = 0

    def record(self, num_bytes: int, now_ps: int) -> None:
        if self._start_ps is None:
            self._start_ps = now_ps
        self.bytes_moved += num_bytes
        self._end_ps = now_ps

    def reset(self) -> None:
        self.bytes_moved = 0
        self._start_ps = None
        self._end_ps = None

    @property
    def window_ps(self) -> int:
        if self._start_ps is None or self._end_ps is None:
            return 0
        return self._end_ps - self._start_ps

    def gb_per_s(self) -> float:
        """Decimal GB/s over the observed window."""
        window = self.window_ps
        if window <= 0:
            raise ValueError(f"bandwidth meter {self.name!r}: empty window")
        return self.bytes_moved / (window / S) / 1e9

    def snapshot_into(self, out: Dict[str, float], prefix: str) -> None:
        out[f"{prefix}.bytes"] = self.bytes_moved
        if self.window_ps > 0 and self.bytes_moved > 0:
            out[f"{prefix}.gbps"] = self.gb_per_s()


class StatsRegistry:
    """A flat namespace of named stats so components can expose counters.

    Backed by a :class:`~repro.telemetry.registry.MetricsRegistry`: the
    legacy ``counters``/``latencies``/``bandwidths`` dict views and the
    legacy ``snapshot()`` key format are preserved, and the full registry
    is reachable as :attr:`metrics` for artifact export.
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.counters: Dict[str, Counter] = {}
        self.latencies: Dict[str, LatencyRecorder] = {}
        self.bandwidths: Dict[str, BandwidthMeter] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.metrics.counter(name)
            self.counters[name] = counter
        return counter

    def latency(self, name: str) -> LatencyRecorder:
        recorder = self.latencies.get(name)
        if recorder is None:
            recorder = LatencyRecorder(name)
            self.metrics.register(recorder)
            self.latencies[name] = recorder
        return recorder

    def bandwidth(self, name: str) -> BandwidthMeter:
        meter = self.bandwidths.get(name)
        if meter is None:
            meter = BandwidthMeter(name)
            self.metrics.register(meter)
            self.bandwidths[name] = meter
        return meter

    def snapshot(self) -> Dict[str, float]:
        """A flat dict of current values (counts and mean latencies)."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[f"count.{name}"] = counter.count
        for name, rec in self.latencies.items():
            if rec.count:
                out[f"latency_ns.{name}"] = rec.mean_ns()
        for name, meter in self.bandwidths.items():
            if meter.window_ps > 0 and meter.bytes_moved > 0:
                out[f"gbps.{name}"] = meter.gb_per_s()
        return out

    def export_into(self, registry: MetricsRegistry, prefix: str) -> None:
        """Mirror current values into ``registry`` under ``prefix`` (gauges)."""
        registry.merge_flat(self.snapshot(), prefix)
