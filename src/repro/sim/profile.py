"""Kernel self-profiling: where does the simulator's wall clock go?

The pure-Python DES kernel is the wall for every hot experiment (see
``benchmarks/BENCH_campaign.json``), so before attacking it the repo
needs a map: which event callbacks burn the time, and how many of each
fire.  A :class:`KernelProfiler` attributes **wall-clock time and event
counts per callback qualname** — the event-type granularity a
calendar-queue/batching overhaul would be judged against.

Design constraints, in order:

1. **Zero cost when disabled.**  The dispatch loops in
   :class:`~repro.sim.kernel.Simulator` check ``profile.active`` once
   per ``run()``/``run_until_signal()`` call — never per event — and
   take the historical untimed loop when no profiler is installed.
   ``benchmarks/bench_kernel_hotspots.py`` guards exactly this.
2. **Deterministic counts.**  Event *counts* per callback are a pure
   function of the simulation (same code, same seed, same counts), so
   they may ride in byte-compared artifacts.  Wall times are measured
   and vary run to run; keep them out of anything byte-compared
   (``report.json``) and in ``kernel_profile.json`` instead.
3. **Stdlib only.**  ``time.perf_counter`` around each dispatch; no
   tracing hooks, no ``sys.setprofile`` (which would time the whole
   interpreter, not the kernel).

Usage::

    from repro.sim import profile

    with profile.profiled() as prof:
        run_table3(samples=8)
    for row in prof.hotspots()[:5]:
        print(row["key"], row["count"], row["wall_s"])

Profilers do not nest: installing over an active profiler raises, the
same discipline :class:`~repro.telemetry.TraceSession` enforces.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional

from ..errors import SimulationError

#: bump when the profile record shape changes incompatibly
PROFILE_SCHEMA_VERSION = 1

#: the schema identifier stamped on profile artifacts
PROFILE_SCHEMA = f"repro.profile/v{PROFILE_SCHEMA_VERSION}"

#: the ambient profiler the kernel dispatch loops consult (one per
#: process, like ``telemetry.probe.session``)
active: Optional["KernelProfiler"] = None


def event_key(fn) -> str:
    """The attribution key of one scheduled callable.

    Functions and (bound) methods report their ``__qualname__`` —
    ``Signal.trigger``, ``DmiChannel._dispatch`` — which is exactly the
    "event type" granularity the hotspot table wants.  Exotic callables
    (partials, callable instances) fall back to their type name.
    """
    return getattr(fn, "__qualname__", None) or type(fn).__name__


class KernelProfiler:
    """Accumulates per-event-type wall time and counts for one session."""

    __slots__ = ("counts", "wall_s", "runs")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}
        self.runs = 0

    # -- recording (called from the kernel dispatch loop) -------------------

    def record(self, key: str, elapsed_s: float) -> None:
        """Attribute one dispatched event to its callback key."""
        self.counts[key] = self.counts.get(key, 0) + 1
        self.wall_s[key] = self.wall_s.get(key, 0.0) + elapsed_s

    # -- views --------------------------------------------------------------

    @property
    def events(self) -> int:
        """Total events dispatched under this profiler."""
        return sum(self.counts.values())

    @property
    def total_wall_s(self) -> float:
        """Total wall-clock seconds spent inside event callbacks."""
        return sum(self.wall_s.values())

    def hotspots(self) -> List[dict]:
        """Per-event-type rows, hottest (by wall time) first.

        Ties break on the key so the ordering is reproducible even when
        two event types measure identically (e.g. both at 0.0 on a
        coarse timer).
        """
        total_wall = self.total_wall_s
        total_count = self.events
        rows = []
        for key in self.counts:
            wall = self.wall_s[key]
            count = self.counts[key]
            rows.append({
                "key": key,
                "count": count,
                "wall_s": wall,
                "wall_share": wall / total_wall if total_wall else 0.0,
                "count_share": count / total_count if total_count else 0.0,
                "mean_us": 1e6 * wall / count if count else 0.0,
            })
        rows.sort(key=lambda r: (-r["wall_s"], r["key"]))
        return rows

    def counts_by_key(self) -> Dict[str, int]:
        """Deterministic view: ``{key: count}`` sorted by key.

        This is the only part of a profile safe to embed in
        byte-compared artifacts — counts repeat across runs, wall times
        do not.
        """
        return {key: self.counts[key] for key in sorted(self.counts)}

    def to_record(self, **extra) -> dict:
        """The full profile as one JSON-serializable record."""
        record = {
            "schema": PROFILE_SCHEMA,
            "schema_version": PROFILE_SCHEMA_VERSION,
            "kind": "kernel_profile",
            "events": self.events,
            "event_types": len(self.counts),
            "runs": self.runs,
            "total_wall_s": self.total_wall_s,
            "hotspots": self.hotspots(),
            "counts": self.counts_by_key(),
        }
        record.update(extra)
        return record


# -- installation -----------------------------------------------------------


def install(profiler: KernelProfiler) -> KernelProfiler:
    """Make ``profiler`` the ambient kernel profiler of this process."""
    global active
    if active is not None:
        raise SimulationError(
            "a kernel profiler is already installed (profilers do not nest)"
        )
    active = profiler
    return profiler


def uninstall() -> None:
    """Remove the ambient profiler (idempotent)."""
    global active
    active = None


@contextmanager
def profiled():
    """Context manager: profile every kernel run inside the block."""
    profiler = install(KernelProfiler())
    try:
        yield profiler
    finally:
        uninstall()


def write_profile(path: str, profiler: KernelProfiler, **extra) -> dict:
    """Write one profile record as pretty JSON; returns the record."""
    record = profiler.to_record(**extra)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return record
