"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock (integer picoseconds) and the event queue.
Everything else in the library — DMI links, memory controllers, accelerators —
is driven by callbacks and generator processes scheduled here.

Design notes
------------
* Events with equal timestamps run in the order they were scheduled
  (``(time_ps, seq)`` ordering), making runs bit-reproducible.
* The kernel never consults wall-clock time or global randomness; anything
  stochastic takes an explicit :class:`repro.sim.rng.Rng`.
* Processes are plain generators (see :mod:`repro.sim.process`); the kernel
  only knows about scheduled callbacks, keeping the core small and auditable.
* Heap entries are ``(time_ps, seq, call)`` tuples: ``heapq`` sifts compare
  C integers instead of calling :meth:`ScheduledCall.__lt__` per swap, and
  ``seq`` is unique so the call object itself is never compared.  A live
  (not-yet-cancelled) event counter is maintained O(1) across scheduling,
  cancellation, and dispatch so :attr:`pending_events` never scans the heap.
  See ``docs/kernel.md`` for the hot-path design rules.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..telemetry import probe
from . import profile as _profile
from .event import ScheduledCall, Signal

#: default runaway-loop guard: exactly this many events may execute before
#: a dispatch loop raises :class:`SimulationError`
DEFAULT_MAX_EVENTS = 50_000_000


class Simulator:
    """A deterministic discrete-event simulator with picosecond resolution."""

    def __init__(self) -> None:
        self._now_ps = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, ScheduledCall]] = []
        self._live_events = 0
        self._running = False

    # -- time ----------------------------------------------------------

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds (convenience for reports)."""
        return self._now_ps / 1_000

    # -- scheduling ------------------------------------------------------

    def call_at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated time ``time_ps``."""
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule in the past: {time_ps} < now {self._now_ps}"
            )
        seq = self._seq
        self._seq = seq + 1
        call = ScheduledCall(time_ps, seq, fn, args, self)
        self._live_events += 1
        heapq.heappush(self._queue, (time_ps, seq, call))
        return call

    def call_after(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        # Inlined call_at (minus the cannot-happen past check): this is the
        # kernel's most-called scheduling entry point.
        time_ps = self._now_ps + delay_ps
        seq = self._seq
        self._seq = seq + 1
        call = ScheduledCall(time_ps, seq, fn, args, self)
        self._live_events += 1
        heapq.heappush(self._queue, (time_ps, seq, call))
        return call

    def trigger_after(self, delay_ps: int, signal: Signal, value: Any = None) -> ScheduledCall:
        """Trigger ``signal`` with ``value`` after ``delay_ps``."""
        return self.call_after(delay_ps, signal.trigger, value)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if the queue is empty."""
        queue = self._queue
        while queue:
            call = heapq.heappop(queue)[2]
            if call.cancelled:
                continue
            call._sim = None
            self._live_events -= 1
            self._now_ps = call.time_ps
            call.fn(*call.args)
            return True
        return False

    def _step_traced(self, trace) -> bool:
        """step() emitting one instant per event (kernel_events sessions)."""
        queue = self._queue
        while queue:
            call = heapq.heappop(queue)[2]
            if call.cancelled:
                continue
            call._sim = None
            self._live_events -= 1
            self._now_ps = call.time_ps
            trace.instant(
                "kernel", getattr(call.fn, "__qualname__", "event"), call.time_ps
            )
            call.fn(*call.args)
            return True
        return False

    def _step_profiled(self, prof, trace, trace_events) -> bool:
        """step() timing each event into the installed kernel profiler."""
        queue = self._queue
        while queue:
            call = heapq.heappop(queue)[2]
            if call.cancelled:
                continue
            call._sim = None
            self._live_events -= 1
            self._now_ps = call.time_ps
            if trace_events:
                trace.instant(
                    "kernel", getattr(call.fn, "__qualname__", "event"),
                    call.time_ps,
                )
            t0 = perf_counter()
            call.fn(*call.args)
            prof.record(_profile.event_key(call.fn), perf_counter() - t0)
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: int = DEFAULT_MAX_EVENTS) -> int:
        """Run events until the queue drains or simulated time passes ``until_ps``.

        Returns the number of events executed.  ``max_events`` guards against
        runaway self-rescheduling loops in model bugs: exactly ``max_events``
        events may execute; the error raises when one more is due.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        # Hoisted so the disabled-telemetry dispatch loop pays nothing per
        # event beyond a LOAD_FAST; per-event emission only on request.
        # The same applies to the kernel profiler: its is-None check runs
        # once per run() call, and the historical untimed loop is taken
        # verbatim when no profiler is installed.
        trace = probe.session
        trace_events = trace is not None and trace.kernel_events
        prof = _profile.active
        start_ps = self._now_ps
        queue = self._queue
        try:
            if prof is not None:
                executed = self._run_profiled(
                    until_ps, max_events, trace, trace_events, prof
                )
            else:
                while queue:
                    time_ps, _, call = queue[0]
                    if call.cancelled:
                        heapq.heappop(queue)
                        continue
                    if until_ps is not None and time_ps > until_ps:
                        break
                    if executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely a scheduling loop"
                        )
                    heapq.heappop(queue)
                    call._sim = None
                    self._live_events -= 1
                    self._now_ps = time_ps
                    if trace_events:
                        trace.instant(
                            "kernel", getattr(call.fn, "__qualname__", "event"),
                            time_ps,
                        )
                    call.fn(*call.args)
                    executed += 1
        finally:
            self._running = False
        if until_ps is not None and self._now_ps < until_ps:
            self._now_ps = until_ps
        if trace is not None:
            trace.complete(
                "kernel", "run", start_ps, self._now_ps, {"events": executed}
            )
            trace.count("kernel.runs")
            trace.count("kernel.events", executed)
        return executed

    def _run_profiled(self, until_ps, max_events, trace, trace_events, prof) -> int:
        """The run() drain loop with per-event wall-time attribution.

        A verbatim copy of the untimed loop plus two ``perf_counter``
        reads per event — kept separate so the common (unprofiled) path
        stays exactly as fast as before the profiler existed.
        """
        executed = 0
        prof.runs += 1
        queue = self._queue
        while queue:
            time_ps, _, call = queue[0]
            if call.cancelled:
                heapq.heappop(queue)
                continue
            if until_ps is not None and time_ps > until_ps:
                break
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling loop"
                )
            heapq.heappop(queue)
            call._sim = None
            self._live_events -= 1
            self._now_ps = time_ps
            if trace_events:
                trace.instant(
                    "kernel", getattr(call.fn, "__qualname__", "event"),
                    time_ps,
                )
            t0 = perf_counter()
            call.fn(*call.args)
            prof.record(_profile.event_key(call.fn), perf_counter() - t0)
            executed += 1
        return executed

    def run_until_signal(
        self,
        signal: Signal,
        timeout_ps: Optional[int] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> Any:
        """Run until ``signal`` triggers; returns its value.

        Raises :class:`SimulationError` if the event queue drains (deadlock),
        the optional timeout elapses before the signal fires, or more than
        ``max_events`` events execute (a self-rescheduling loop that never
        fires the signal would otherwise spin forever with no timeout).
        """
        deadline = None if timeout_ps is None else self._now_ps + timeout_ps
        trace = probe.session
        trace_events = trace is not None and trace.kernel_events
        prof = _profile.active
        if prof is not None:
            prof.runs += 1
            step = lambda: self._step_profiled(prof, trace, trace_events)  # noqa: E731
        elif trace_events:
            step = lambda: self._step_traced(trace)  # noqa: E731
        else:
            step = None  # fast path: dispatch inline, no per-event call
        start_ps = self._now_ps
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        while not signal.triggered:
            if deadline is not None:
                # Cancelled entries must not shadow the deadline check: a
                # cancelled head timestamped before the deadline would let
                # the dispatch below execute the next *live* event past the
                # timeout, advancing sim time beyond the deadline.
                while queue and queue[0][2].cancelled:
                    heappop(queue)
                if queue and queue[0][0] > deadline:
                    raise SimulationError(
                        f"timeout waiting for signal {signal.name!r} after {timeout_ps}ps"
                    )
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling loop"
                )
            if step is None:
                while queue:
                    call = heappop(queue)[2]
                    if not call.cancelled:
                        break
                else:
                    raise SimulationError(
                        f"deadlock: event queue empty, signal {signal.name!r} never fired"
                    )
                call._sim = None
                self._live_events -= 1
                self._now_ps = call.time_ps
                call.fn(*call.args)
            elif not step():
                raise SimulationError(
                    f"deadlock: event queue empty, signal {signal.name!r} never fired"
                )
            executed += 1
        if trace is not None:
            trace.complete(
                "kernel", "run_until_signal", start_ps, self._now_ps,
                {"signal": signal.name, "events": executed},
            )
            trace.count("kernel.signal_waits")
            trace.count("kernel.events", executed)
        return signal.value

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live_events
