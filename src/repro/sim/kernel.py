"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock (integer picoseconds) and the event queue.
Everything else in the library — DMI links, memory controllers, accelerators —
is driven by callbacks and generator processes scheduled here.

Design notes
------------
* Events with equal timestamps run in the order they were scheduled
  (``(time_ps, seq)`` ordering), making runs bit-reproducible.
* The kernel never consults wall-clock time or global randomness; anything
  stochastic takes an explicit :class:`repro.sim.rng.Rng`.
* Processes are plain generators (see :mod:`repro.sim.process`); the kernel
  only knows about scheduled callbacks, keeping the core small and auditable.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from ..telemetry import probe
from . import profile as _profile
from .event import ScheduledCall, Signal


class Simulator:
    """A deterministic discrete-event simulator with picosecond resolution."""

    def __init__(self) -> None:
        self._now_ps = 0
        self._seq = 0
        self._queue: List[ScheduledCall] = []
        self._running = False

    # -- time ----------------------------------------------------------

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds (convenience for reports)."""
        return self._now_ps / 1_000

    # -- scheduling ------------------------------------------------------

    def call_at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` at absolute simulated time ``time_ps``."""
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule in the past: {time_ps} < now {self._now_ps}"
            )
        call = ScheduledCall(time_ps, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, call)
        return call

    def call_after(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Schedule ``fn(*args)`` ``delay_ps`` picoseconds from now."""
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        return self.call_at(self._now_ps + delay_ps, fn, *args)

    def trigger_after(self, delay_ps: int, signal: Signal, value: Any = None) -> ScheduledCall:
        """Trigger ``signal`` with ``value`` after ``delay_ps``."""
        return self.call_after(delay_ps, signal.trigger, value)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now_ps = call.time_ps
            call.fn(*call.args)
            return True
        return False

    def _step_traced(self, trace) -> bool:
        """step() emitting one instant per event (kernel_events sessions)."""
        while self._queue:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now_ps = call.time_ps
            trace.instant(
                "kernel", getattr(call.fn, "__qualname__", "event"), call.time_ps
            )
            call.fn(*call.args)
            return True
        return False

    def _step_profiled(self, prof, trace, trace_events) -> bool:
        """step() timing each event into the installed kernel profiler."""
        while self._queue:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now_ps = call.time_ps
            if trace_events:
                trace.instant(
                    "kernel", getattr(call.fn, "__qualname__", "event"),
                    call.time_ps,
                )
            t0 = perf_counter()
            call.fn(*call.args)
            prof.record(_profile.event_key(call.fn), perf_counter() - t0)
            return True
        return False

    def run(self, until_ps: Optional[int] = None, max_events: int = 50_000_000) -> int:
        """Run events until the queue drains or simulated time passes ``until_ps``.

        Returns the number of events executed.  ``max_events`` guards against
        runaway self-rescheduling loops in model bugs.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        # Hoisted so the disabled-telemetry dispatch loop pays nothing per
        # event beyond a LOAD_FAST; per-event emission only on request.
        # The same applies to the kernel profiler: its is-None check runs
        # once per run() call, and the historical untimed loop is taken
        # verbatim when no profiler is installed.
        trace = probe.session
        trace_events = trace is not None and trace.kernel_events
        prof = _profile.active
        start_ps = self._now_ps
        try:
            if prof is not None:
                executed = self._run_profiled(
                    until_ps, max_events, trace, trace_events, prof
                )
            else:
                while self._queue:
                    head = self._queue[0]
                    if head.cancelled:
                        heapq.heappop(self._queue)
                        continue
                    if until_ps is not None and head.time_ps > until_ps:
                        break
                    heapq.heappop(self._queue)
                    self._now_ps = head.time_ps
                    if trace_events:
                        trace.instant(
                            "kernel", getattr(head.fn, "__qualname__", "event"),
                            head.time_ps,
                        )
                    head.fn(*head.args)
                    executed += 1
                    if executed > max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely a scheduling loop"
                        )
        finally:
            self._running = False
        if until_ps is not None and self._now_ps < until_ps:
            self._now_ps = until_ps
        if trace is not None:
            trace.complete(
                "kernel", "run", start_ps, self._now_ps, {"events": executed}
            )
            trace.count("kernel.runs")
            trace.count("kernel.events", executed)
        return executed

    def _run_profiled(self, until_ps, max_events, trace, trace_events, prof) -> int:
        """The run() drain loop with per-event wall-time attribution.

        A verbatim copy of the untimed loop plus two ``perf_counter``
        reads per event — kept separate so the common (unprofiled) path
        stays exactly as fast as before the profiler existed.
        """
        executed = 0
        prof.runs += 1
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until_ps is not None and head.time_ps > until_ps:
                break
            heapq.heappop(self._queue)
            self._now_ps = head.time_ps
            if trace_events:
                trace.instant(
                    "kernel", getattr(head.fn, "__qualname__", "event"),
                    head.time_ps,
                )
            t0 = perf_counter()
            head.fn(*head.args)
            prof.record(_profile.event_key(head.fn), perf_counter() - t0)
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a scheduling loop"
                )
        return executed

    def run_until_signal(self, signal: Signal, timeout_ps: Optional[int] = None) -> Any:
        """Run until ``signal`` triggers; returns its value.

        Raises :class:`SimulationError` if the event queue drains (deadlock) or
        the optional timeout elapses before the signal fires.
        """
        deadline = None if timeout_ps is None else self._now_ps + timeout_ps
        trace = probe.session
        trace_events = trace is not None and trace.kernel_events
        prof = _profile.active
        if prof is not None:
            prof.runs += 1
            step = lambda: self._step_profiled(prof, trace, trace_events)  # noqa: E731
        elif trace_events:
            step = lambda: self._step_traced(trace)  # noqa: E731
        else:
            step = self.step
        start_ps = self._now_ps
        executed = 0
        while not signal.triggered:
            if deadline is not None and self._queue and self._queue[0].time_ps > deadline:
                raise SimulationError(
                    f"timeout waiting for signal {signal.name!r} after {timeout_ps}ps"
                )
            if not step():
                raise SimulationError(
                    f"deadlock: event queue empty, signal {signal.name!r} never fired"
                )
            executed += 1
        if trace is not None:
            trace.complete(
                "kernel", "run_until_signal", start_ps, self._now_ps,
                {"signal": signal.name, "events": executed},
            )
            trace.count("kernel.signal_waits")
            trace.count("kernel.events", executed)
        return signal.value

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for c in self._queue if not c.cancelled)
