"""Discrete-event simulation kernel: deterministic time, processes, stats."""

from .clock import (
    ClockDomain,
    centaur_core_clock,
    dmi_link_clock,
    fabric_clock,
    nest_clock,
)
from .event import ScheduledCall, Signal
from .kernel import Simulator
from .process import Process, all_of
from .profile import PROFILE_SCHEMA, KernelProfiler, profiled, write_profile
from .rng import Rng, derive_seed
from .stats import BandwidthMeter, Counter, LatencyRecorder, StatsRegistry

__all__ = [
    "BandwidthMeter",
    "ClockDomain",
    "Counter",
    "KernelProfiler",
    "LatencyRecorder",
    "PROFILE_SCHEMA",
    "Process",
    "Rng",
    "ScheduledCall",
    "Signal",
    "Simulator",
    "StatsRegistry",
    "all_of",
    "centaur_core_clock",
    "derive_seed",
    "dmi_link_clock",
    "fabric_clock",
    "nest_clock",
    "profiled",
    "write_profile",
]
