"""Generator-based processes on top of the event kernel.

A *process* is a plain Python generator driven by the simulator.  The
generator communicates with the kernel by yielding:

* an ``int`` — sleep that many picoseconds;
* a :class:`~repro.sim.event.Signal` — suspend until it triggers; the
  signal's value is sent back into the generator;
* another :class:`Process` — join it; the joined process's return value is
  sent back.

When the generator returns, the process's :attr:`done` signal triggers with
its return value, so processes compose: parents can join children, and plain
callback code can ``add_waiter`` on :attr:`done`.

Example
-------
>>> from repro.sim import Simulator, Process
>>> sim = Simulator()
>>> def worker():
...     yield 1_000      # sleep 1 ns
...     return "finished"
>>> p = Process(sim, worker())
>>> sim.run()
2
>>> p.result
'finished'
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from ..errors import SimulationError
from .event import Signal
from .kernel import Simulator

ProcessGen = Generator[Any, Any, Any]


class Process:
    """Drives a generator as a cooperative simulated process."""

    def __init__(self, sim: Simulator, gen: ProcessGen, name: str = ""):
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done = Signal(f"{self.name}.done")
        self._failure: Optional[BaseException] = None
        # Start on the next event-queue visit at the current time so creation
        # order, not call depth, decides execution order.
        sim.call_after(0, self._advance, None)

    # -- public state ------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the generator has run to completion (or failed)."""
        return self.done.triggered or self._failure is not None

    @property
    def result(self) -> Any:
        """Return value of the generator; raises if it failed or is running."""
        if self._failure is not None:
            raise self._failure
        if not self.done.triggered:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self.done.value

    # -- kernel plumbing ---------------------------------------------------

    def _advance(self, send_value: Any) -> None:
        if self._failure is not None:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.trigger(stop.value)
            return
        except BaseException as exc:  # surface model bugs at run() site
            self._failure = exc
            raise
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, int):
            if yielded < 0:
                self._fail(SimulationError(f"process {self.name!r} yielded negative delay"))
                return
            self.sim.call_after(yielded, self._advance, None)
        elif isinstance(yielded, Signal):
            yielded.add_waiter(self._advance)
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(self._advance)
        else:
            self._fail(
                SimulationError(
                    f"process {self.name!r} yielded unsupported {type(yielded).__name__}"
                )
            )

    def _fail(self, exc: BaseException) -> None:
        self._failure = exc
        raise exc


def all_of(sim: Simulator, processes: Iterable[Process], name: str = "all_of") -> Process:
    """A process that completes when every process in ``processes`` has.

    Returns a :class:`Process` whose result is the list of child results in
    input order — the simulated analogue of ``asyncio.gather``.
    """
    procs: List[Process] = list(processes)

    def waiter() -> ProcessGen:
        for proc in procs:
            if not proc.finished:
                yield proc.done
        return [p.result for p in procs]

    return Process(sim, waiter(), name=name)
