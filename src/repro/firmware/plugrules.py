"""DMI slot plug rules (Section 3.1).

A ConTutto card is physically larger than a CDIMM: plugging one into a DMI
slot blocks the adjacent slot, effectively removing two CDIMMs.  The
POWER8 memory plug rules additionally restrict which slots can take a
ConTutto at all.  We model the rules as:

* ConTutto may only be plugged into even-numbered DMI slots (each even
  slot has the clearance of its odd neighbour);
* a ConTutto in slot ``2k`` blocks slot ``2k + 1``;
* CDIMMs may occupy any unblocked slot;
* at most one card per slot.

The configurations the paper validated — one ConTutto with six CDIMMs, and
two ConTuttos with four CDIMMs — both satisfy these rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..errors import PlugRuleError

NUM_SLOTS = 8


@dataclass(frozen=True)
class PluggedCard:
    """One card in the plug plan."""

    slot: int
    kind: str  # "centaur" | "contutto"


def blocked_slots(cards: List[PluggedCard]) -> Set[int]:
    """Slots rendered unusable by oversized cards."""
    return {card.slot + 1 for card in cards if card.kind == "contutto"}


def validate_plug_plan(cards: List[PluggedCard]) -> None:
    """Check a plug plan against the rules; raises :class:`PlugRuleError`."""
    seen: Dict[int, str] = {}
    for card in cards:
        if not 0 <= card.slot < NUM_SLOTS:
            raise PlugRuleError(f"slot {card.slot} does not exist (0..{NUM_SLOTS - 1})")
        if card.kind not in ("centaur", "contutto"):
            raise PlugRuleError(f"unknown card kind {card.kind!r}")
        if card.slot in seen:
            raise PlugRuleError(f"slot {card.slot} plugged twice")
        seen[card.slot] = card.kind
        if card.kind == "contutto" and card.slot % 2 != 0:
            raise PlugRuleError(
                f"ConTutto in slot {card.slot}: only even DMI slots accept the card"
            )
    blocked = blocked_slots(cards)
    for card in cards:
        if card.slot in blocked and seen.get(card.slot - 1) == "contutto":
            raise PlugRuleError(
                f"slot {card.slot} is blocked by the ConTutto in slot {card.slot - 1}"
            )


def max_cdimms_with(num_contutto: int) -> int:
    """How many CDIMMs fit alongside ``num_contutto`` ConTutto cards.

    Each ConTutto consumes its own slot and blocks one neighbour.
    """
    if not 0 <= num_contutto <= NUM_SLOTS // 2:
        raise PlugRuleError(
            f"at most {NUM_SLOTS // 2} ConTutto cards fit in {NUM_SLOTS} slots"
        )
    return NUM_SLOTS - 2 * num_contutto


def paper_config_one_contutto() -> List[PluggedCard]:
    """1x ConTutto + 6x CDIMM — a configuration the paper tested."""
    return [PluggedCard(0, "contutto")] + [
        PluggedCard(slot, "centaur") for slot in range(2, 8)
    ]


def paper_config_two_contutto() -> List[PluggedCard]:
    """2x ConTutto + 4x CDIMM — the other tested configuration."""
    return [PluggedCard(0, "contutto"), PluggedCard(2, "contutto")] + [
        PluggedCard(slot, "centaur") for slot in range(4, 8)
    ]
