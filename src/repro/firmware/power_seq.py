"""FPGA power sequencing (Section 3.2).

ConTutto generates its ancillary voltages locally from the 12 V GPU power
connector: switching regulators for the high-current core and I/O rails,
LDOs for the quiet analog rails feeding the high-speed serial channels.
The service processor must bring the rails up in the order the FPGA's
power-sequencing guidelines demand, and tear them down in reverse; doing
otherwise risks latch-up — modeled here as a hard error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import PowerSequenceError
from ..sim import Signal, Simulator
from ..units import us_to_ps


@dataclass(frozen=True)
class VoltageRail:
    """One supply rail on the card."""

    name: str
    volts: float
    #: bring-up order (lower first); teardown is the reverse
    order: int
    #: regulator type: switching for high current, LDO for quiet analog
    regulator: str = "switching"
    #: soft-start ramp time
    ramp_us: float = 200.0


#: the ConTutto rail set, derived from the single bulk 12 V input
CONTUTTO_RAILS = [
    VoltageRail("VCC_core", 0.85, order=0, regulator="switching", ramp_us=300),
    VoltageRail("VCCIO", 1.5, order=1, regulator="switching", ramp_us=200),
    VoltageRail("VCCPD", 2.5, order=2, regulator="switching", ramp_us=200),
    VoltageRail("VCCA_GXB", 2.5, order=3, regulator="ldo", ramp_us=150),
    VoltageRail("VCCT_GXB", 1.0, order=4, regulator="ldo", ramp_us=150),
]


class PowerSequencer:
    """Drives the card's rails under FSP control, enforcing ordering."""

    def __init__(self, sim: Simulator, rails: List[VoltageRail] = None, name: str = "pwr"):
        self.sim = sim
        self.name = name
        self.rails = sorted(rails or CONTUTTO_RAILS, key=lambda r: r.order)
        self._up = {rail.name: False for rail in self.rails}
        self.sequences_completed = 0
        self.faults = 0

    # -- single-rail control (the FSP drives these in order) ----------------

    def rail_up(self, rail_name: str) -> None:
        rail = self._find(rail_name)
        for earlier in self.rails:
            if earlier.order < rail.order and not self._up[earlier.name]:
                self.faults += 1
                raise PowerSequenceError(
                    f"{self.name}: {rail.name} raised before {earlier.name}"
                )
        self._up[rail.name] = True

    def rail_down(self, rail_name: str) -> None:
        rail = self._find(rail_name)
        for later in self.rails:
            if later.order > rail.order and self._up[later.name]:
                self.faults += 1
                raise PowerSequenceError(
                    f"{self.name}: {rail.name} dropped before {later.name}"
                )
        self._up[rail.name] = False

    def _find(self, rail_name: str) -> VoltageRail:
        for rail in self.rails:
            if rail.name == rail_name:
                return rail
        raise PowerSequenceError(f"{self.name}: unknown rail {rail_name!r}")

    # -- full sequences -----------------------------------------------------------

    def power_on(self) -> Signal:
        """Bring every rail up in order; signal fires when stable."""
        done = Signal(f"{self.name}.on")
        total_ps = 0
        for rail in self.rails:
            self.rail_up(rail.name)
            total_ps += us_to_ps(rail.ramp_us)
        self.sequences_completed += 1
        self.sim.call_after(total_ps, done.trigger)
        return done

    def power_off(self) -> Signal:
        done = Signal(f"{self.name}.off")
        total_ps = 0
        for rail in reversed(self.rails):
            self.rail_down(rail.name)
            total_ps += us_to_ps(50)
        self.sim.call_after(total_ps, done.trigger)
        return done

    @property
    def all_up(self) -> bool:
        return all(self._up.values())

    @property
    def all_down(self) -> bool:
        return not any(self._up.values())
