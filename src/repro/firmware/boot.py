"""The IPL (boot) flow enabling ConTutto in a POWER8 system (Section 3.4).

The sequence firmware runs for each configured card:

1. validate the plug plan (ConTutto blocks its neighbour slot, even slots
   only);
2. power-sequence ConTutto cards (FPGA rails in order, then configuration
   from flash);
3. presence-detect over FSI and differentiate ConTutto from CDIMM;
4. read the SPD of the DIMMs behind each buffer to learn the memory type;
5. train each DMI link, retrying with an FPGA-only reset on failure —
   "link training often does not complete successfully in a single try and
   bringing down the entire system would be prohibitively slow";
6. build the memory map: DRAM contiguous from 0, non-volatile memory at
   the top with type/preserved flags, MRAM behind a 4 GB hardware window.

Channels whose training keeps failing are deconfigured by the FSP and the
system boots without them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..buffer.base import MemoryBuffer
from ..dmi import TrainingConfig
from ..errors import FirmwareError, LinkTrainingError
from ..memory.spd import SpdData, spd_for_device
from ..processor.power8 import Power8Socket
from ..sim import Simulator
from ..units import ms_to_ps
from .fsi import ConTuttoFsiSlave, FsiSlave
from .fsp import ServiceProcessor
from .plugrules import PluggedCard, validate_plug_plan
from .power_seq import PowerSequencer

#: FPGA configuration from flash after power-up
FPGA_CONFIG_PS = ms_to_ps(120)


@dataclass
class CardDescriptor:
    """Everything firmware needs to know about one plugged card."""

    slot: int
    buffer: MemoryBuffer
    fsi_slave: FsiSlave
    sequencer: Optional[PowerSequencer] = None  # ConTutto cards only

    @property
    def kind(self) -> str:
        return self.buffer.kind

    def spd(self) -> SpdData:
        """SPD summary of the memory behind this buffer."""
        devices = [port.device for port in self.buffer.ports]
        first = spd_for_device(devices[0])
        total = sum(d.capacity_bytes for d in devices)
        return SpdData(
            module_type=first.module_type,
            capacity_bytes=total,
            contents_preserved=first.contents_preserved,
        )


@dataclass
class BootReport:
    """Outcome of one IPL."""

    trained_channels: List[int] = field(default_factory=list)
    deconfigured_channels: List[int] = field(default_factory=list)
    training_attempts: Dict[int, int] = field(default_factory=dict)
    duration_ps: int = 0

    @property
    def booted(self) -> bool:
        return bool(self.trained_channels)


class IplFlow:
    """Drives the boot sequence against a socket and its cards."""

    #: training retries (with FPGA reset between) before deconfiguring
    MAX_TRAINING_RETRIES = 5

    def __init__(
        self,
        sim: Simulator,
        socket: Power8Socket,
        fsp: Optional[ServiceProcessor] = None,
        training: Optional[TrainingConfig] = None,
    ):
        self.sim = sim
        self.socket = socket
        self.fsp = fsp or ServiceProcessor(sim)
        self.training = training or TrainingConfig()

    def boot(self, cards: List[CardDescriptor]) -> BootReport:
        """Run the full IPL; returns the boot report."""
        start_ps = self.sim.now_ps
        report = BootReport()

        validate_plug_plan([PluggedCard(c.slot, c.kind) for c in cards])
        for card in cards:
            self.fsp.fsi.attach(card.slot, card.fsi_slave)
        presence = self.fsp.discover()
        for card in cards:
            if presence.get(card.slot) != card.kind:
                raise FirmwareError(
                    f"slot {card.slot}: presence detect saw "
                    f"{presence.get(card.slot)!r}, expected {card.kind!r}"
                )

        for card in cards:
            self._power_on(card)
            self._attach_and_train(card, report)

        self._build_memory_map(cards, report)
        report.duration_ps = self.sim.now_ps - start_ps
        return report

    # -- power ------------------------------------------------------------------

    def _power_on(self, card: CardDescriptor) -> None:
        if card.sequencer is None:
            return
        done = card.sequencer.power_on()
        self.sim.run_until_signal(done, timeout_ps=10**12)
        # configure the FPGA from flash (free-running crystal domain)
        gate_ps = self.sim.now_ps + FPGA_CONFIG_PS
        self.sim.run(until_ps=gate_ps)
        self.fsp.log(f"slot{card.slot}", "FPGA configured", severity="info")

    # -- training with retries ------------------------------------------------------

    def _attach_and_train(self, card: CardDescriptor, report: BootReport) -> None:
        self.socket.attach_buffer(card.slot, card.buffer)
        attempts = 0
        while attempts < self.MAX_TRAINING_RETRIES:
            attempts += 1
            done = self.socket.train_channel(card.slot, self.training)
            try:
                self.sim.run_until_signal(done, timeout_ps=10**12)
            except LinkTrainingError as exc:
                self.fsp.log(f"slot{card.slot}", f"training attempt {attempts}: {exc}")
                self._reset_for_retry(card)
                continue
            report.trained_channels.append(card.slot)
            report.training_attempts[card.slot] = attempts
            self.fsp.log(
                f"slot{card.slot}", f"link trained after {attempts} attempt(s)",
                severity="info",
            )
            break
        else:
            report.deconfigured_channels.append(card.slot)
            report.training_attempts[card.slot] = attempts
            self.fsp.deconfigure(f"slot{card.slot}")

    def _reset_for_retry(self, card: CardDescriptor) -> None:
        """Reset only the card, not the system (the external FSI slave's job)."""
        if isinstance(card.fsi_slave, ConTuttoFsiSlave):
            done = card.fsi_slave.pulse_fpga_reset()
            self.sim.run_until_signal(done, timeout_ps=10**12)

    # -- memory map ---------------------------------------------------------------------

    def _build_memory_map(self, cards: List[CardDescriptor], report: BootReport) -> None:
        entries = []
        for card in cards:
            if card.slot not in report.trained_channels:
                continue
            spd = card.spd()
            entries.append(
                {
                    "memory_type": spd.module_type,
                    "capacity_bytes": spd.capacity_bytes,
                    "channel": card.slot,
                    "contents_preserved": spd.contents_preserved,
                }
            )
        if entries:
            self.socket.memory_map.build(entries)
            self.socket.memory_map.validate()
