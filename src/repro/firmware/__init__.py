"""Firmware/service layer: FSP, FSI/I2C, power sequencing, plug rules, IPL."""

from .boot import FPGA_CONFIG_PS, BootReport, CardDescriptor, IplFlow
from .csr_map import (
    CONTUTTO_DESIGN_ID,
    ENGINES_BUSY_CSR,
    FLUSHES_CSR,
    ID_CSR,
    KNOB_CSR,
    STATUS_CSR,
    build_contutto_csrs,
    read_latency_knob,
    set_latency_knob,
)
from .fsi import (
    FSI_ACCESS_PS,
    CentaurFsiSlave,
    ConTuttoFsiSlave,
    FsiBus,
    FsiSlave,
)
from .fsp import ErrorLogEntry, ServiceProcessor
from .i2c import I2C_TRANSACTION_PS, CsrBlock, I2cMaster
from .plugrules import (
    NUM_SLOTS,
    PluggedCard,
    blocked_slots,
    max_cdimms_with,
    paper_config_one_contutto,
    paper_config_two_contutto,
    validate_plug_plan,
)
from .power_seq import CONTUTTO_RAILS, PowerSequencer, VoltageRail

__all__ = [
    "BootReport",
    "CONTUTTO_DESIGN_ID",
    "CONTUTTO_RAILS",
    "ENGINES_BUSY_CSR",
    "FLUSHES_CSR",
    "ID_CSR",
    "KNOB_CSR",
    "STATUS_CSR",
    "build_contutto_csrs",
    "read_latency_knob",
    "set_latency_knob",
    "CardDescriptor",
    "CentaurFsiSlave",
    "ConTuttoFsiSlave",
    "CsrBlock",
    "ErrorLogEntry",
    "FPGA_CONFIG_PS",
    "FSI_ACCESS_PS",
    "FsiBus",
    "FsiSlave",
    "I2C_TRANSACTION_PS",
    "I2cMaster",
    "IplFlow",
    "NUM_SLOTS",
    "PluggedCard",
    "PowerSequencer",
    "ServiceProcessor",
    "VoltageRail",
    "blocked_slots",
    "max_cdimms_with",
    "paper_config_one_contutto",
    "paper_config_two_contutto",
    "validate_plug_plan",
]
