"""The Field Service Processor (FSP).

The FSP derives the structure of the machine, configures each feature card
before boot, monitors hardware health, and maintains long-term error logs —
deconfiguring hardware that faults too often (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..sim import Simulator
from .fsi import FsiBus


@dataclass(frozen=True)
class ErrorLogEntry:
    """One entry in the FSP's persistent error log."""

    time_ps: int
    component: str
    message: str
    severity: str = "error"  # "info" | "error" | "fatal"


class ServiceProcessor:
    """FSP: presence detection, error logging, deconfiguration policy."""

    #: errors on one component before the FSP pulls it from the config
    DECONFIGURE_THRESHOLD = 3

    def __init__(self, sim: Simulator, fsi: Optional[FsiBus] = None, name: str = "fsp"):
        self.sim = sim
        self.name = name
        self.fsi = fsi or FsiBus(sim)
        self.error_log: List[ErrorLogEntry] = []
        self._error_counts: Dict[str, int] = {}
        self.deconfigured: Set[str] = set()

    # -- structure discovery ----------------------------------------------------

    def discover(self) -> Dict[int, str]:
        """Presence-detect sweep over the FSI bus: port -> device kind."""
        return self.fsi.scan()

    # -- error handling -----------------------------------------------------------

    def log(self, component: str, message: str, severity: str = "error") -> None:
        self.error_log.append(
            ErrorLogEntry(self.sim.now_ps, component, message, severity)
        )
        if severity != "info":
            count = self._error_counts.get(component, 0) + 1
            self._error_counts[component] = count
            if count >= self.DECONFIGURE_THRESHOLD:
                self.deconfigure(component)

    def deconfigure(self, component: str) -> None:
        """Remove a component from the machine configuration."""
        if component not in self.deconfigured:
            self.deconfigured.add(component)
            self.error_log.append(
                ErrorLogEntry(
                    self.sim.now_ps, component, "deconfigured by FSP policy", "fatal"
                )
            )

    def is_deconfigured(self, component: str) -> bool:
        return component in self.deconfigured

    def errors_for(self, component: str) -> List[ErrorLogEntry]:
        return [e for e in self.error_log if e.component == component]

    @property
    def error_count(self) -> int:
        return sum(1 for e in self.error_log if e.severity != "info")
