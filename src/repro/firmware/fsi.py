"""Field Service Interface: the FSP's path into every card.

All POWER systems carry a service processor that talks to "slave" devices
over FSI (Section 3.2).  A CDIMM's Centaur exposes its registers natively
on FSI; a ConTutto card instead carries an *external* FSI slave that
provides:

* an I2C master for indirect access to the FPGA's internal registers,
* reset / power-on controls for the FPGA independent of the rest of the
  system (so training can retry without a full re-IPL),
* presence detection and differentiation from standard CDIMMs,
* direct access to the SPD EEPROMs of the DIMMs plugged into the card.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import FirmwareError
from ..sim import Signal, Simulator
from ..units import us_to_ps
from .i2c import CsrBlock, I2cMaster

#: one native FSI register access
FSI_ACCESS_PS = us_to_ps(2)


class FsiSlave:
    """Base FSI slave: presence + a native register window."""

    device_kind = "unknown"

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.csr = CsrBlock(f"{name}.fsi_csr")

    def read_reg(self, offset: int) -> Signal:
        done = Signal(f"{self.name}.fsird")
        self.sim.call_after(FSI_ACCESS_PS, lambda: done.trigger(self.csr.read(offset)))
        return done

    def write_reg(self, offset: int, value: int) -> Signal:
        done = Signal(f"{self.name}.fsiwr")

        def do():
            self.csr.write(offset, value)
            done.trigger(None)

        self.sim.call_after(FSI_ACCESS_PS, do)
        return done


class CentaurFsiSlave(FsiSlave):
    """Centaur's native FSI presence: direct register access, no I2C hop."""

    device_kind = "centaur"

    def __init__(self, sim: Simulator, name: str = "centaur.fsi"):
        super().__init__(sim, name)
        self.csr.define(0x00, reset_value=0xC0_17_00_08)  # id / presence


class ConTuttoFsiSlave(FsiSlave):
    """The external FSI slave on a ConTutto card.

    FPGA-internal registers are *not* in this block: they are reached via
    :meth:`fpga_read` / :meth:`fpga_write`, which model the FSI -> I2C ->
    CSR indirection and its latency.
    """

    device_kind = "contutto"

    # control register bits
    CTRL_REG = 0x04
    CTRL_FPGA_RESET = 1 << 0
    CTRL_FPGA_POWER = 1 << 1

    def __init__(
        self,
        sim: Simulator,
        fpga_csr: CsrBlock,
        spd_images: Optional[List[bytes]] = None,
        name: str = "contutto.fsi",
    ):
        super().__init__(sim, name)
        self.csr.define(0x00, reset_value=0xC7_77_00_01)  # id: ConTutto
        self.csr.define(self.CTRL_REG, reset_value=self.CTRL_FPGA_POWER)
        self.i2c = I2cMaster(sim, fpga_csr, name=f"{name}.i2c")
        self._spd_images = list(spd_images or [])
        self.fpga_resets = 0

    # -- indirect FPGA register path --------------------------------------

    def fpga_read(self, offset: int) -> Signal:
        """FSI -> I2C -> FPGA CSR read (pays both latencies)."""
        done = Signal(f"{self.name}.fpgard")

        def after_fsi():
            self.i2c.read_reg(offset).add_waiter(done.trigger)

        self.sim.call_after(FSI_ACCESS_PS, after_fsi)
        return done

    def fpga_write(self, offset: int, value: int) -> Signal:
        done = Signal(f"{self.name}.fpgawr")

        def after_fsi():
            self.i2c.write_reg(offset, value).add_waiter(done.trigger)

        self.sim.call_after(FSI_ACCESS_PS, after_fsi)
        return done

    # -- reset / power control ------------------------------------------------

    def pulse_fpga_reset(self) -> Signal:
        """Reset just the FPGA (training retry without touching the system)."""
        self.fpga_resets += 1
        done = Signal(f"{self.name}.reset")
        self.sim.call_after(us_to_ps(500), done.trigger)
        return done

    # -- SPD ----------------------------------------------------------------------

    def read_spd(self, dimm_slot: int) -> Signal:
        """Read the SPD EEPROM of a DIMM plugged into the card."""
        if not 0 <= dimm_slot < len(self._spd_images):
            raise FirmwareError(
                f"{self.name}: no DIMM in card slot {dimm_slot}"
            )
        done = Signal(f"{self.name}.spd{dimm_slot}")
        image = self._spd_images[dimm_slot]
        # SPD EEPROMs sit on the same I2C segment: one transaction per image
        self.sim.call_after(us_to_ps(200), lambda: done.trigger(image))
        return done


class FsiBus:
    """The FSP's view: slaves enumerated by (channel) port."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._slaves: Dict[int, FsiSlave] = {}

    def attach(self, port: int, slave: FsiSlave) -> None:
        if port in self._slaves:
            raise FirmwareError(f"FSI port {port} already has a slave")
        self._slaves[port] = slave

    def present(self, port: int) -> bool:
        return port in self._slaves

    def slave(self, port: int) -> FsiSlave:
        if port not in self._slaves:
            raise FirmwareError(f"no FSI slave on port {port}")
        return self._slaves[port]

    def scan(self) -> Dict[int, str]:
        """Presence-detect sweep: port -> device kind."""
        return {port: slave.device_kind for port, slave in sorted(self._slaves.items())}
