"""The ConTutto FPGA's CSR map, as firmware sees it over FSI -> I2C.

Section 3.4: "the register space inside the FPGA is accessed via I2C ...
each access becomes an indirect path of FSI Slave to I2C Master to FPGA
register."  This module defines the registers that path reaches and wires
them to the live FPGA model, so "controllable from software" is literal:
writing the knob CSR through the service path changes the delay modules in
the MBS pipeline of a running buffer.
"""

from __future__ import annotations

from ..sim import Signal
from .fsi import ConTuttoFsiSlave
from .i2c import CsrBlock

#: CSR offsets inside the FPGA
ID_CSR = 0x00             # design identity/version
KNOB_CSR = 0x40           # latency knob position (0..7)
STATUS_CSR = 0x44         # MBS liveness: commands executed (wraps at 32 bits)
FLUSHES_CSR = 0x48        # flush commands executed
ENGINES_BUSY_CSR = 0x4C   # command engines currently busy

CONTUTTO_DESIGN_ID = 0xC0_77_00_01


def build_contutto_csrs(buffer) -> CsrBlock:
    """CSR block wired to a live :class:`~repro.fpga.contutto.ConTuttoBuffer`."""
    csr = CsrBlock(f"{buffer.name}.csr")
    csr.define(ID_CSR, reset_value=CONTUTTO_DESIGN_ID)
    csr.define(
        KNOB_CSR,
        reset_value=buffer.knob.position,
        on_write=lambda value: buffer.knob.set_position(value & 0x7),
        on_read=lambda: buffer.knob.position,
    )
    csr.define(STATUS_CSR, on_read=lambda: buffer.mbs.commands & 0xFFFF_FFFF)
    csr.define(FLUSHES_CSR, on_read=lambda: buffer.mbs.flushes & 0xFFFF_FFFF)
    csr.define(ENGINES_BUSY_CSR, on_read=lambda: buffer.mbs.engines.busy_count)
    return csr


def set_latency_knob(slave: ConTuttoFsiSlave, position: int) -> Signal:
    """Software path: set the knob via FSI -> I2C (pays the real latency)."""
    return slave.fpga_write(KNOB_CSR, position)


def read_latency_knob(slave: ConTuttoFsiSlave) -> Signal:
    return slave.fpga_read(KNOB_CSR)
