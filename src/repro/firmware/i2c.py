"""I2C register access path into the ConTutto FPGA.

Unlike Centaur, whose internal registers the service processor reads
directly over FSI, ConTutto's register space is reached indirectly: the
on-card FSI slave drives an I2C master, which talks to the FPGA's CSR
block (Section 3.4).  Every register access therefore pays an I2C
transaction — orders of magnitude slower than a native FSI access, which
is why firmware batches and retries around this path.

Registers are 32-bit, addressed by a 16-bit CSR offset.  Devices expose a
:class:`CsrBlock`; the bus adds transaction latency.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import FirmwareError
from ..sim import Signal, Simulator
from ..units import us_to_ps

#: one I2C register transaction at 400 kHz (addr + data phases)
I2C_TRANSACTION_PS = us_to_ps(120)


class CsrBlock:
    """A 32-bit register file with optional side-effect hooks."""

    def __init__(self, name: str = "csr"):
        self.name = name
        self._regs: Dict[int, int] = {}
        self._write_hooks: Dict[int, Callable[[int], None]] = {}
        self._read_hooks: Dict[int, Callable[[], int]] = {}

    def define(
        self,
        offset: int,
        reset_value: int = 0,
        on_write: Optional[Callable[[int], None]] = None,
        on_read: Optional[Callable[[], int]] = None,
    ) -> None:
        """Declare a register at ``offset`` with optional hooks."""
        if offset in self._regs:
            raise FirmwareError(f"{self.name}: register {offset:#x} already defined")
        self._regs[offset] = reset_value
        if on_write:
            self._write_hooks[offset] = on_write
        if on_read:
            self._read_hooks[offset] = on_read

    def read(self, offset: int) -> int:
        if offset not in self._regs:
            raise FirmwareError(f"{self.name}: read of undefined CSR {offset:#x}")
        hook = self._read_hooks.get(offset)
        if hook is not None:
            self._regs[offset] = hook() & 0xFFFF_FFFF
        return self._regs[offset]

    def write(self, offset: int, value: int) -> None:
        if offset not in self._regs:
            raise FirmwareError(f"{self.name}: write of undefined CSR {offset:#x}")
        value &= 0xFFFF_FFFF
        self._regs[offset] = value
        hook = self._write_hooks.get(offset)
        if hook is not None:
            hook(value)


class I2cMaster:
    """The on-card I2C master fronting the FPGA CSR block."""

    def __init__(self, sim: Simulator, target: CsrBlock, name: str = "i2c"):
        self.sim = sim
        self.target = target
        self.name = name
        self.transactions = 0

    def read_reg(self, offset: int) -> Signal:
        """Read a CSR; signal fires with the value after the bus latency."""
        done = Signal(f"{self.name}.rd{offset:#x}")
        self.transactions += 1
        self.sim.call_after(
            I2C_TRANSACTION_PS, lambda: done.trigger(self.target.read(offset))
        )
        return done

    def write_reg(self, offset: int, value: int) -> Signal:
        done = Signal(f"{self.name}.wr{offset:#x}")
        self.transactions += 1

        def do_write():
            self.target.write(offset, value)
            done.trigger(None)

        self.sim.call_after(I2C_TRANSACTION_PS, do_write)
        return done
