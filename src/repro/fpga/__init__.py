"""ConTutto FPGA logic: timing closure, MBS, Avalon, resources, the buffer."""

from .alu import (
    RmwAlu,
    conditional_swap,
    max_store,
    merge_partial,
    min_store,
)
from .avalon import AvalonBus, AvalonPort
from .command_engine import (
    ENGINES_PER_WRITE_PORT,
    NUM_ENGINES,
    CommandEngine,
    EnginePool,
)
from .contutto import ACCEL_WINDOW_BASE, NUM_DIMM_SLOTS, ConTuttoBuffer
from .latency_knob import CYCLES_PER_POSITION, MAX_POSITION, LatencyKnob
from .mbs import MbsLogic
from .pcie_link import LINK_CHUNK_BYTES, CardToCardLink
from .tcam import TCAM_BLOCK_COST, TcamEntry, TernaryCam
from .resources import (
    ACCEL_BLOCK_COSTS,
    BASE_BLOCK_COSTS,
    STRATIX_V_A9,
    BlockCost,
    DesignResources,
    FpgaDevice,
    base_design_resources,
)
from .timing import (
    INITIAL_TIMING,
    SHIPPING_TIMING,
    FpgaTimingConfig,
    TimingClosure,
)

__all__ = [
    "ACCEL_BLOCK_COSTS",
    "ACCEL_WINDOW_BASE",
    "AvalonBus",
    "AvalonPort",
    "BASE_BLOCK_COSTS",
    "BlockCost",
    "CardToCardLink",
    "CommandEngine",
    "LINK_CHUNK_BYTES",
    "TCAM_BLOCK_COST",
    "TcamEntry",
    "TernaryCam",
    "ConTuttoBuffer",
    "CYCLES_PER_POSITION",
    "DesignResources",
    "ENGINES_PER_WRITE_PORT",
    "EnginePool",
    "FpgaDevice",
    "FpgaTimingConfig",
    "INITIAL_TIMING",
    "LatencyKnob",
    "MAX_POSITION",
    "MbsLogic",
    "NUM_DIMM_SLOTS",
    "NUM_ENGINES",
    "RmwAlu",
    "SHIPPING_TIMING",
    "STRATIX_V_A9",
    "TimingClosure",
    "base_design_resources",
    "conditional_swap",
    "max_store",
    "merge_partial",
    "min_store",
]
