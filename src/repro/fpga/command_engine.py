"""Command engines: per-command ownership from dispatch to done.

MBS maintains 32 identical command engines so 32 commands (the full host
tag window) can be in flight simultaneously (Section 3.3).  An engine owns
its command until completion and sends the completion notification to the
processor.  Engines 0-15 share Avalon write port 0 and its ALU; engines
16-31 share write port 1 (each write port serves 16 engines, with
arbitration).  Read requests are issued by the frame decoders directly on a
dedicated read port per decoder, which we reflect as a per-engine read-port
assignment by decoder parity.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ProtocolError
from ..sim import Signal, Simulator

NUM_ENGINES = 32
ENGINES_PER_WRITE_PORT = 16


class CommandEngine:
    """One of the 32 MBS command engines."""

    def __init__(self, engine_id: int):
        if not 0 <= engine_id < NUM_ENGINES:
            raise ProtocolError(f"engine id {engine_id} outside 0..{NUM_ENGINES - 1}")
        self.engine_id = engine_id
        self.busy = False
        self.current_tag: Optional[int] = None
        # Stats
        self.commands_handled = 0

    @property
    def write_port(self) -> int:
        """Avalon write port (and ALU) this engine arbitrates for."""
        return self.engine_id // ENGINES_PER_WRITE_PORT

    @property
    def read_port(self) -> int:
        """Read port of the frame decoder that dispatched to this engine."""
        return self.engine_id % 2

    def claim(self, tag: int) -> None:
        if self.busy:
            raise ProtocolError(f"engine {self.engine_id} already busy")
        self.busy = True
        self.current_tag = tag

    def release(self) -> None:
        if not self.busy:
            raise ProtocolError(f"engine {self.engine_id} released while idle")
        self.busy = False
        self.current_tag = None
        self.commands_handled += 1


class EnginePool:
    """Allocator over the 32 engines with wait support."""

    def __init__(self, sim: Simulator, num_engines: int = NUM_ENGINES):
        self.sim = sim
        self.engines = [CommandEngine(i) for i in range(num_engines)]
        self._free: List[int] = list(range(num_engines))
        self._waiters: List[Signal] = []
        # Stats
        self.allocation_stalls = 0

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def busy_count(self) -> int:
        return len(self.engines) - len(self._free)

    def try_allocate(self, tag: int) -> Optional[CommandEngine]:
        if not self._free:
            return None
        engine = self.engines[self._free.pop(0)]
        engine.claim(tag)
        return engine

    def allocate_or_wait(self, tag: int, callback) -> None:
        """Allocate now or as soon as an engine frees; calls back with it.

        With 32 engines and a 32-tag host window the wait path is never hit
        in a correct system, but the pool guards against protocol bugs.
        """
        engine = self.try_allocate(tag)
        if engine is not None:
            callback(engine)
            return
        self.allocation_stalls += 1
        gate = Signal("engine-wait")
        self._waiters.append(gate)
        gate.add_waiter(lambda _: self.allocate_or_wait(tag, callback))

    def free(self, engine: CommandEngine) -> None:
        engine.release()
        self._free.append(engine.engine_id)
        if self._waiters:
            self._waiters.pop(0).trigger()
