"""The read-modify-write ALU shared by command engines.

One ALU sits on the path to each Avalon write port and is shared among the
16 command engines that use that port (Section 3.3, MBS).  For plain writes
it is a NOP pass-through; for partial writes it merges bytes under the
byte-enable mask; for the in-line acceleration extensions it computes
min-store / max-store / conditional-swap on the cache line.

Arithmetic ops treat the 128-byte line as 32 little-endian signed 32-bit
lanes (the min/max accelerator of Table 5 operates on 32-bit integers).
Conditional swap compares lane 0 against an expected value and, on match,
replaces the whole line — the line-granular analogue of compare-and-swap.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ..dmi.commands import Opcode
from ..errors import AccelError
from ..sim import ClockDomain, Simulator, fabric_clock
from ..units import CACHE_LINE_BYTES

LANES = CACHE_LINE_BYTES // 4  # 32 x int32
_PACK = struct.Struct(f"<{LANES}i")


def _lanes(line: bytes) -> Tuple[int, ...]:
    return _PACK.unpack(line)


def _pack(values) -> bytes:
    return _PACK.pack(*values)


def merge_partial(old: bytes, new: bytes, byte_enable: bytes) -> bytes:
    """Byte-enable merge for partial (read-modify-write) line writes."""
    if not (len(old) == len(new) == len(byte_enable) == CACHE_LINE_BYTES):
        raise AccelError("partial merge requires three 128B operands")
    merged = bytearray(old)
    for i, enabled in enumerate(byte_enable):
        if enabled:
            merged[i] = new[i]
    return bytes(merged)


def min_store(old: bytes, new: bytes) -> bytes:
    """Element-wise minimum over 32-bit signed lanes."""
    return _pack(min(a, b) for a, b in zip(_lanes(old), _lanes(new)))


def max_store(old: bytes, new: bytes) -> bytes:
    """Element-wise maximum over 32-bit signed lanes."""
    return _pack(max(a, b) for a, b in zip(_lanes(old), _lanes(new)))


def conditional_swap(old: bytes, new: bytes) -> Tuple[bytes, bytes]:
    """Line-granular compare-and-swap.

    ``new`` lane 0 carries the expected value; if ``old`` lane 0 matches,
    the line is replaced by ``new``.  Returns ``(stored_line, returned_line)``
    where the returned line is the pre-swap contents (sent upstream so the
    processor can detect success without polling).
    """
    old_lanes = _lanes(old)
    expected = _lanes(new)[0]
    if old_lanes[0] == expected:
        return new, old
    return old, old


class RmwAlu:
    """The shared ALU with single-issue occupancy accounting."""

    def __init__(self, sim: Simulator, name: str, clock: ClockDomain = None):
        self.sim = sim
        self.name = name
        self.clock = clock or fabric_clock()
        self._busy_until_ps = 0
        # Stats
        self.ops = 0
        self.contended_ps = 0

    def issue(self, opcode: Opcode, old: bytes, new: bytes, byte_enable=None):
        """Compute the op; returns ``(stored, returned, ready_ps)``.

        ``ready_ps`` accounts for one execution cycle plus any wait behind
        another engine currently occupying this ALU.
        """
        start = max(self.sim.now_ps, self._busy_until_ps)
        self.contended_ps += start - self.sim.now_ps
        ready = start + self.clock.period_ps
        self._busy_until_ps = ready
        self.ops += 1

        if opcode is Opcode.WRITE:
            return new, None, ready  # NOP pass-through
        if opcode is Opcode.PARTIAL_WRITE:
            if byte_enable is None:
                raise AccelError("partial write through ALU needs byte enables")
            return merge_partial(old, new, byte_enable), None, ready
        if opcode is Opcode.MIN_STORE:
            return min_store(old, new), None, ready
        if opcode is Opcode.MAX_STORE:
            return max_store(old, new), None, ready
        if opcode is Opcode.CSWAP:
            stored, returned = conditional_swap(old, new)
            return stored, returned, ready
        raise AccelError(f"ALU does not implement {opcode.value}")
