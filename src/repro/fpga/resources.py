"""FPGA resource accounting for the ConTutto design (Table 1).

The card uses an Altera Stratix V A9.  Table 1 reports the base design
using 136,856 ALMs (43%), 191,403 registers (30%) and 244 M20K blocks (9%),
"leaving a significant portion of resources for architectural exploration
and in-memory application acceleration".

We reproduce the table from a structural cost model: each logic block of
Figure 4 carries an ALM/register/M20K cost, and the design's utilization is
the sum over instantiated blocks.  The per-block numbers are calibrated so
the base design reproduces Table 1 exactly; accelerators then consume the
*remaining* budget, and over-subscription is a configuration error — the
same constraint a real fit would enforce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BlockCost:
    """FPGA resource cost of one logic block."""

    alms: int
    registers: int
    m20k: int

    def __add__(self, other: "BlockCost") -> "BlockCost":
        return BlockCost(
            self.alms + other.alms,
            self.registers + other.registers,
            self.m20k + other.m20k,
        )

    def scaled(self, count: int) -> "BlockCost":
        return BlockCost(self.alms * count, self.registers * count, self.m20k * count)


ZERO_COST = BlockCost(0, 0, 0)


@dataclass(frozen=True)
class FpgaDevice:
    """Resource capacity of an FPGA part."""

    name: str
    alms: int
    registers: int
    m20k: int


#: the part on the ConTutto card, with the Table 1 "Available" numbers
STRATIX_V_A9 = FpgaDevice("Stratix V A9", alms=317_000, registers=634_000, m20k=2_640)


#: per-block costs of the base ConTutto design (Figure 4), calibrated so the
#: base design sums exactly to Table 1's utilized numbers.
BASE_BLOCK_COSTS: Dict[str, BlockCost] = {
    "dmi_phy": BlockCost(18_000, 30_000, 24),
    "mbi": BlockCost(16_000, 25_000, 40),           # handshake + replay buffers
    "mbs_core": BlockCost(14_000, 20_000, 16),      # 2 decoders, arbiter, read handler
    "command_engine": BlockCost(1_200, 1_600, 1),   # x32
    "rmw_alu": BlockCost(2_500, 3_000, 0),          # x2 (one per write port)
    "avalon": BlockCost(9_000, 14_000, 24),
    "ddr3_controller": BlockCost(16_000, 20_000, 48),  # x2 (one per DIMM slot)
    "support": BlockCost(4_456, 5_203, 12),         # FSI/I2C CSRs, clocking, misc
}

#: costs of optional blocks added for the acceleration use cases
ACCEL_BLOCK_COSTS: Dict[str, BlockCost] = {
    "access_processor": BlockCost(12_000, 16_000, 32),
    "memcopy_engine": BlockCost(3_000, 5_000, 8),
    "minmax_engine": BlockCost(4_000, 6_000, 4),
    "fft_engine": BlockCost(22_000, 30_000, 64),
    "inline_accel_ext": BlockCost(2_000, 2_600, 0),  # augmented command engines
}


class DesignResources:
    """Accumulates block instances and checks them against the device."""

    def __init__(self, device: FpgaDevice = STRATIX_V_A9):
        self.device = device
        self._blocks: List[Tuple[str, int, BlockCost]] = []

    def add(self, name: str, count: int = 1, cost: BlockCost = None) -> None:
        """Add ``count`` instances of a named block.

        ``cost`` defaults to the catalog entry for ``name``; unknown names
        require an explicit cost.
        """
        if cost is None:
            cost = BASE_BLOCK_COSTS.get(name) or ACCEL_BLOCK_COSTS.get(name)
            if cost is None:
                raise ConfigurationError(f"unknown block {name!r} and no cost given")
        if count <= 0:
            raise ConfigurationError(f"block count must be positive, got {count}")
        self._blocks.append((name, count, cost))
        total = self.total()
        if (
            total.alms > self.device.alms
            or total.registers > self.device.registers
            or total.m20k > self.device.m20k
        ):
            raise ConfigurationError(
                f"design does not fit {self.device.name}: "
                f"{total.alms} ALMs / {total.registers} regs / {total.m20k} M20K"
            )

    def total(self) -> BlockCost:
        out = ZERO_COST
        for _, count, cost in self._blocks:
            out = out + cost.scaled(count)
        return out

    def utilization(self) -> Dict[str, float]:
        """Fraction of the device used, per resource class."""
        total = self.total()
        return {
            "alms": total.alms / self.device.alms,
            "registers": total.registers / self.device.registers,
            "m20k": total.m20k / self.device.m20k,
        }

    def headroom(self) -> BlockCost:
        """Resources still free for exploration/acceleration."""
        total = self.total()
        return BlockCost(
            self.device.alms - total.alms,
            self.device.registers - total.registers,
            self.device.m20k - total.m20k,
        )

    def table(self) -> List[Tuple[str, int, int]]:
        """(resource, available, utilized) rows — the shape of Table 1."""
        total = self.total()
        return [
            ("ALMs", self.device.alms, total.alms),
            ("Registers", self.device.registers, total.registers),
            ("M20K", self.device.m20k, total.m20k),
        ]


def base_design_resources(device: FpgaDevice = STRATIX_V_A9) -> DesignResources:
    """Resource accounting for the base (Centaur-replacement) design."""
    design = DesignResources(device)
    design.add("dmi_phy")
    design.add("mbi")
    design.add("mbs_core")
    design.add("command_engine", count=32)
    design.add("rmw_alu", count=2)
    design.add("avalon")
    design.add("ddr3_controller", count=2)
    design.add("support")
    return design
