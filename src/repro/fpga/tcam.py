"""The ConTutto card's ternary CAM (Section 3.2, future-expansion block).

"The TCAM is a ternary CAM, which could be potentially used to contain
routing tables or tag entries on a data cache or for the acceleration of
other applications requiring look-up."

A ternary CAM matches a search key against stored (value, mask) pairs
where masked bits are don't-cares; among all matching entries the one with
the lowest index wins (hardware priority encoder).  Every lookup completes
in one device cycle regardless of occupancy — the property that makes CAMs
worth their silicon.

The model is functional (real longest-prefix-match behaviour, usable for
routing-table experiments) and timed (single-cycle search, per-entry write
timing), and it charges the FPGA resource budget like any other block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AccelError, ConfigurationError
from ..sim import ClockDomain, Simulator, fabric_clock
from .resources import ACCEL_BLOCK_COSTS, BlockCost

#: resource cost of the TCAM macro (registered into the accelerator catalog)
TCAM_BLOCK_COST = BlockCost(6_000, 9_000, 16)
ACCEL_BLOCK_COSTS.setdefault("tcam", TCAM_BLOCK_COST)


@dataclass(frozen=True)
class TcamEntry:
    """One stored word: ``value`` compared only where ``mask`` bits are 1."""

    value: int
    mask: int

    def matches(self, key: int) -> bool:
        return (key ^ self.value) & self.mask == 0


class TernaryCam:
    """A priority-encoded ternary CAM with single-cycle search."""

    def __init__(
        self,
        sim: Simulator,
        entries: int = 1024,
        key_bits: int = 64,
        clock: Optional[ClockDomain] = None,
        name: str = "tcam",
    ):
        if entries <= 0:
            raise ConfigurationError(f"{name}: entry count must be positive")
        if not 1 <= key_bits <= 128:
            raise ConfigurationError(f"{name}: key width {key_bits} unsupported")
        self.sim = sim
        self.capacity = entries
        self.key_bits = key_bits
        self.clock = clock or fabric_clock()
        self.name = name
        self._entries: List[Optional[TcamEntry]] = [None] * entries
        self._busy_until_ps = 0
        # Stats
        self.lookups = 0
        self.hits = 0

    # -- management ---------------------------------------------------------

    def _check_word(self, word: int, label: str) -> None:
        if not 0 <= word < (1 << self.key_bits):
            raise AccelError(f"{self.name}: {label} exceeds {self.key_bits} bits")

    def write(self, index: int, value: int, mask: int) -> int:
        """Program an entry; returns the completion time (ps)."""
        if not 0 <= index < self.capacity:
            raise AccelError(f"{self.name}: index {index} out of range")
        self._check_word(value, "value")
        self._check_word(mask, "mask")
        self._entries[index] = TcamEntry(value, mask)
        # entry writes serialize: two cycles (value + mask planes)
        start = max(self.sim.now_ps, self._busy_until_ps)
        finish = start + 2 * self.clock.period_ps
        self._busy_until_ps = finish
        return finish

    def invalidate(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise AccelError(f"{self.name}: index {index} out of range")
        self._entries[index] = None

    @property
    def occupancy(self) -> int:
        return sum(1 for e in self._entries if e is not None)

    # -- search ----------------------------------------------------------------

    def lookup(self, key: int) -> Tuple[Optional[int], int]:
        """Search for ``key``; returns (matching index or None, finish ps).

        One cycle regardless of occupancy — every entry compares in
        parallel and a priority encoder picks the lowest matching index.
        """
        self._check_word(key, "key")
        self.lookups += 1
        start = max(self.sim.now_ps, self._busy_until_ps)
        finish = start + self.clock.period_ps
        self._busy_until_ps = finish
        for index, entry in enumerate(self._entries):
            if entry is not None and entry.matches(key):
                self.hits += 1
                return index, finish
        return None, finish

    # -- convenience: longest-prefix-match routing table ---------------------------

    def add_prefix_route(self, index: int, prefix: int, prefix_len: int) -> None:
        """Store an IP-style prefix route (prefix_len leading bits matter).

        For correct longest-prefix semantics, install longer prefixes at
        lower indices (the priority encoder then prefers them).
        """
        if not 0 <= prefix_len <= self.key_bits:
            raise AccelError(f"{self.name}: prefix length {prefix_len} invalid")
        if prefix_len == 0:
            mask = 0
        else:
            mask = ((1 << prefix_len) - 1) << (self.key_bits - prefix_len)
        self.write(index, prefix & mask, mask)
