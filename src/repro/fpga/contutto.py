"""The ConTutto FPGA memory buffer: the paper's primary artifact.

Composes the FPGA logic of Figure 4 into a drop-in
:class:`~repro.buffer.base.MemoryBuffer`:

* DMI PHY + MBI characteristics come from the timing-closure model
  (:mod:`repro.fpga.timing`) — the endpoint overheads, the replay
  preparation time, and the freeze workaround;
* MBS with 32 command engines, two RMW ALUs and the latency knob;
* an Avalon bus with one DDR3 memory controller per populated DIMM slot
  (two slots on the card), lines interleaved across slots;
* optional in-line acceleration (augmented command engines implementing
  min-store / max-store / conditional-swap) and room for block accelerators
  as additional Avalon slaves;
* resource accounting that reproduces Table 1 for the base design.

The FPGA intentionally omits Centaur's 16 MB cache and auxiliary functions
— "the FPGA and its performance is not representative of that of the
Centaur chip" — so there is no cache here by design.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..buffer.base import MemoryBuffer, RespondFn
from ..dmi.commands import Command, Opcode
from ..errors import ConfigurationError
from ..memory import MemoryController, MemoryControllerConfig
from ..memory.device import MemoryDevice
from ..sim import Simulator, fabric_clock
from ..units import CACHE_LINE_BYTES
from .avalon import AvalonBus
from .latency_knob import LatencyKnob
from .mbs import MbsLogic
from .resources import (
    ACCEL_BLOCK_COSTS,
    DesignResources,
    base_design_resources,
)
from .timing import SHIPPING_TIMING, FpgaTimingConfig, TimingClosure

NUM_DIMM_SLOTS = 2

#: Avalon address where accelerator MMIO windows begin (above any DIMM space)
ACCEL_WINDOW_BASE = 1 << 40


class ConTuttoBuffer(MemoryBuffer):
    """FPGA-based memory buffer, pin-compatible replacement for a CDIMM."""

    kind = "contutto"

    def __init__(
        self,
        sim: Simulator,
        devices: List[MemoryDevice],
        timing: FpgaTimingConfig = SHIPPING_TIMING,
        knob_position: int = 0,
        inline_accel: bool = False,
        mc_config: MemoryControllerConfig = None,
        freeze_workaround: bool = True,
        name: str = "contutto0",
    ):
        super().__init__(sim, name)
        self.freeze_workaround = freeze_workaround
        if not 1 <= len(devices) <= NUM_DIMM_SLOTS:
            raise ConfigurationError(
                f"{name}: ConTutto has {NUM_DIMM_SLOTS} DIMM slots, "
                f"got {len(devices)} devices"
            )
        if len({dev.capacity_bytes for dev in devices}) > 1:
            raise ConfigurationError(f"{name}: DIMMs must be identical capacity")

        self.clock = fabric_clock()
        self.timing = TimingClosure(timing, self.clock)
        self.timing.check()  # the design must close timing at 250 MHz

        # The FPGA's soft memory controller (Altera DDR3 MegaCore analogue)
        # is far slower than Centaur's: deep fabric pipelines on the command
        # path, a half-rate PHY, and wide clock-domain crossings.  These
        # defaults are calibrated so the full-system measured latency
        # reproduces Table 3 (see repro.core.calibration).
        mc_config = mc_config or MemoryControllerConfig(
            command_overhead_ps=self.clock.cycles_to_ps(33),
            response_overhead_ps=self.clock.cycles_to_ps(24),
        )
        self.avalon = AvalonBus(sim, name=f"{name}.avalon")
        self.ports = []
        base = 0
        for i, dev in enumerate(devices):
            mc = MemoryController(sim, dev, mc_config, name=f"{name}.mc{i}")
            self.avalon.add_slave(base, dev.capacity_bytes, mc, name=f"mc{i}")
            self.ports.append(mc)
            base += dev.capacity_bytes

        self.knob = LatencyKnob(self.clock)
        self.knob.set_position(knob_position)
        self.inline_accel = inline_accel
        self.mbs = MbsLogic(
            sim,
            self.avalon,
            knob=self.knob,
            clock=self.clock,
            route=self._route,
            inline_accel=inline_accel,
            name=f"{name}.mbs",
        )
        self._accel_blocks: List[str] = []
        self._next_accel_base = ACCEL_WINDOW_BASE

    # -- address interleave -----------------------------------------------------

    def _route(self, addr: int) -> int:
        """Interleave 128B lines across the populated DIMM slots."""
        if len(self.ports) == 1:
            return addr
        line = addr // CACHE_LINE_BYTES
        slot = line % len(self.ports)
        local_line = line // len(self.ports)
        slot_base = slot * self.ports[0].device.capacity_bytes
        return slot_base + local_line * CACHE_LINE_BYTES

    @property
    def capacity_bytes(self) -> int:
        return sum(port.device.capacity_bytes for port in self.ports)

    # -- command execution --------------------------------------------------------

    def supports(self, opcode: Opcode) -> bool:
        if opcode is Opcode.FLUSH:
            return True  # added for the persistent-memory stack
        if opcode in (Opcode.MIN_STORE, Opcode.MAX_STORE, Opcode.CSWAP):
            return self.inline_accel
        return True

    def _execute(self, command: Command, respond: RespondFn) -> None:
        self._reject_unsupported(command)
        self.mbs.handle(command, respond)

    # -- endpoint characteristics ---------------------------------------------------

    def endpoint_overheads(self) -> Tuple[int, int, int, bool]:
        return (
            self.timing.tx_overhead_ps(),
            self.timing.rx_overhead_ps(),
            self.timing.replay_prep_ps(),
            # part of the shipping design; disable to study the bare
            # replay-start path (Section 3.3)
            self.freeze_workaround,
        )

    # -- accelerator integration -------------------------------------------------

    def attach_accelerator(self, slave: object, window_bytes: int, block: str, name: str = "") -> int:
        """Map an accelerator as a new Avalon slave; returns its base address.

        ``block`` names the resource-cost entry (e.g. ``"fft_engine"``) so
        the addition shows up in — and must fit — the FPGA resource budget.
        """
        if block not in ACCEL_BLOCK_COSTS:
            raise ConfigurationError(f"unknown accelerator block {block!r}")
        base = self._next_accel_base
        self.avalon.add_slave(base, window_bytes, slave, name=name or block)
        self._accel_blocks.append(block)
        self.resources()  # raises if the addition no longer fits the part
        self._next_accel_base = base + window_bytes
        return base

    # -- resources (Table 1) --------------------------------------------------------

    def resources(self) -> DesignResources:
        design = base_design_resources()
        if self.inline_accel:
            design.add("inline_accel_ext")
        for block in self._accel_blocks:
            design.add(block)
        return design
