"""Timing-closure model for the ConTutto FPGA logic (Section 3.3).

Two hard constraints shaped the real design:

1. **FRTL budget** — every fabric pipeline stage costs 4 ns (250 MHz), i.e.
   8 cycles on the 2 GHz memory bus, and the POWER8 host tolerates only a
   bounded frame round-trip latency.  The designers (a) bypassed the
   receiver macro's clock-crossing FIFO, capturing the phase-offset data
   directly in the core clock domain, and (b) collapsed the CRC logic from
   four pipeline stages to two, Centaur-style.

2. **Achievable clock** — packing more logic per stage lowers the fabric
   Fmax.  The two-stage CRC only closed timing with pre-placed first-stage
   flops at the receiver-fabric interface and an over-constrained CRC feed
   stage.

This module models both: a pipeline configuration yields rx/tx overheads
(for the DMI endpoint) and an Fmax estimate; configurations that cannot
reach 250 MHz raise at design-build time, reproducing the design-space
narrative as executable constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim import ClockDomain, fabric_clock


@dataclass(frozen=True)
class FpgaTimingConfig:
    """Pipeline structure knobs for the DMI-facing FPGA logic."""

    #: CRC pipeline depth: Centaur uses 2; the initial FPGA design used 4
    crc_stages: int = 2
    #: use the receiver macro's clock-crossing FIFO (adds 3 stages) instead
    #: of sampling the 14x32 phase-offset bits directly in the core domain
    use_rx_clock_crossing_fifo: bool = False
    #: pre-place the first stage of fabric flip-flops at the RX interface
    preplace_rx_flops: bool = True
    #: over-constrain the stage feeding all 14x32 bits into the CRC cone
    overconstrain_crc_feed: bool = True
    #: MBI stages after CRC: sequence/ACK bookkeeping
    mbi_stages: int = 2
    #: TX-side stages: frame build, scramble, serializer feed
    tx_stages: int = 3
    #: cycles to fence MBS and switch the TX mux onto the replay buffer
    replay_switch_cycles: int = 10

    def __post_init__(self) -> None:
        if self.crc_stages < 1:
            raise ConfigurationError("CRC needs at least one pipeline stage")


class TimingClosure:
    """Evaluates a pipeline configuration against fabric constraints."""

    #: Fmax of a comfortable (4-stage-CRC) datapath on this fabric, in MHz
    BASELINE_FMAX_MHZ = 350.0
    #: each physical optimization recovers this fraction of Fmax; the
    #: two-stage CRC misses 250 MHz unless BOTH are applied (Section 3.3)
    PREPLACE_GAIN = 0.05
    OVERCONSTRAIN_GAIN = 0.04

    def __init__(self, config: FpgaTimingConfig, clock: ClockDomain = None):
        self.config = config
        self.clock = clock or fabric_clock()

    # -- achievable clock --------------------------------------------------

    def logic_depth_factor(self) -> float:
        """Relative combinational depth per stage vs the 4-stage design."""
        # Halving the stage count roughly doubles the logic packed per stage;
        # interpolate with the 4-stage design as 1.0.
        return 4.0 / self.config.crc_stages * 0.5 + 0.5

    def estimated_fmax_mhz(self) -> float:
        fmax = self.BASELINE_FMAX_MHZ / self.logic_depth_factor()
        if self.config.preplace_rx_flops:
            fmax *= 1 + self.PREPLACE_GAIN
        if self.config.overconstrain_crc_feed:
            fmax *= 1 + self.OVERCONSTRAIN_GAIN
        return fmax

    @property
    def target_mhz(self) -> float:
        return 1_000_000 / self.clock.period_ps  # 4000 ps -> 250 MHz

    def meets_timing(self) -> bool:
        return self.estimated_fmax_mhz() >= self.target_mhz

    def check(self) -> None:
        if not self.meets_timing():
            raise ConfigurationError(
                f"design misses timing: estimated Fmax "
                f"{self.estimated_fmax_mhz():.0f} MHz below the "
                f"{self.target_mhz:.0f} MHz target "
                f"(crc_stages={self.config.crc_stages}, "
                f"preplace={self.config.preplace_rx_flops}, "
                f"overconstrain={self.config.overconstrain_crc_feed})"
            )

    # -- latency contributions -----------------------------------------------

    def rx_stages(self) -> int:
        fifo = 3 if self.config.use_rx_clock_crossing_fifo else 1
        return fifo + self.config.crc_stages + self.config.mbi_stages

    def rx_overhead_ps(self) -> int:
        return self.clock.cycles_to_ps(self.rx_stages())

    def tx_overhead_ps(self) -> int:
        return self.clock.cycles_to_ps(self.config.tx_stages + self.config.crc_stages)

    def replay_prep_ps(self) -> int:
        return self.clock.cycles_to_ps(self.config.replay_switch_cycles)

    def frtl_contribution_ps(self) -> int:
        """The buffer-internal part of the frame round trip."""
        return self.rx_overhead_ps() + self.tx_overhead_ps()

    def nest_cycles_per_stage(self, nest_period_ps: int = 500) -> int:
        """How many 2 GHz memory-bus cycles one fabric stage costs (=8)."""
        return self.clock.period_ps // nest_period_ps


#: the shipping configuration: 2-stage CRC, FIFO bypassed, both physical
#: optimizations applied — the only combination that meets both constraints
SHIPPING_TIMING = FpgaTimingConfig()

#: the initial (pre-optimization) design: comfortable timing, FRTL too high
INITIAL_TIMING = FpgaTimingConfig(
    crc_stages=4,
    use_rx_clock_crossing_fifo=True,
    preplace_rx_flops=False,
    overconstrain_crc_feed=False,
)
