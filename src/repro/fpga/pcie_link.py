"""Card-to-card PCIe transfers (Section 3.2, future-expansion block).

"The PCIe interface could be potentially used for direct memory-to-memory
transfers between ConTutto cards without burdening the POWER8 memory bus."

:class:`CardToCardLink` connects two ConTutto buffers' DIMM spaces over a
modeled PCIe pipe: a transfer streams row-sized bursts out of the source
card's memory controllers, across the link at PCIe bandwidth, into the
destination card's controllers — no DMI frames, no host tags, no memory-bus
occupancy.  The alternative path (read lines over DMI to the host, write
them back over the other channel) exists for comparison via the socket.
"""

from __future__ import annotations

from typing import List

from ..errors import AccelError, ConfigurationError
from ..sim import Process, Signal, Simulator
from ..units import transfer_ps
from .contutto import ConTuttoBuffer

#: burst size across the link (matches the DMA row bursts on the cards)
LINK_CHUNK_BYTES = 8 << 10


class CardToCardLink:
    """A PCIe pipe between two ConTutto cards' local memory spaces."""

    def __init__(
        self,
        sim: Simulator,
        card_a: ConTuttoBuffer,
        card_b: ConTuttoBuffer,
        link_gb_s: float = 3.2,       # x4 Gen3 effective
        per_chunk_overhead_ps: int = 400_000,  # TLP/DLLP + DMA engine setup
        name: str = "c2c",
    ):
        if card_a is card_b:
            raise ConfigurationError(f"{name}: need two distinct cards")
        if link_gb_s <= 0:
            raise ConfigurationError(f"{name}: bandwidth must be positive")
        self.sim = sim
        self.cards = (card_a, card_b)
        self.link_gb_s = link_gb_s
        self.per_chunk_overhead_ps = per_chunk_overhead_ps
        self.name = name
        self._link_free_ps = 0
        # Stats
        self.bytes_transferred = 0
        self.transfers = 0

    def _card_index(self, card: ConTuttoBuffer) -> int:
        try:
            return self.cards.index(card)
        except ValueError:
            raise AccelError(f"{self.name}: card {card.name} not on this link")

    def _read_local(self, card: ConTuttoBuffer, addr: int, nbytes: int) -> Signal:
        """Read from a card's DIMM space via its own memory controllers."""
        local = card._route(addr)
        port = card.avalon._route(local)[0]
        return port.submit_read(card.avalon._route(local)[1], nbytes)

    def _write_local(self, card: ConTuttoBuffer, addr: int, data: bytes) -> Signal:
        local = card._route(addr)
        slave, slave_local = card.avalon._route(local)
        return slave.submit_write(slave_local, data)

    def transfer(
        self, src: ConTuttoBuffer, src_addr: int, dst: ConTuttoBuffer,
        dst_addr: int, nbytes: int,
    ) -> Process:
        """Move ``nbytes`` from one card's memory to the other's.

        The returned process's result is the byte count moved.  Pipelined:
        while chunk N crosses the link, chunk N+1 reads from the source.
        """
        self._card_index(src)
        self._card_index(dst)
        if nbytes <= 0:
            raise AccelError(f"{self.name}: transfer size must be positive")

        def run():
            moved = 0
            pending_write = None
            pos = 0
            while pos < nbytes:
                take = min(LINK_CHUNK_BYTES, nbytes - pos)
                read_sig = self._read_local(src, src_addr + pos, take)
                data = yield read_sig
                # the link serializes chunks at PCIe bandwidth + protocol cost
                start = max(self.sim.now_ps, self._link_free_ps)
                done_at = (
                    start + self.per_chunk_overhead_ps
                    + transfer_ps(take, self.link_gb_s)
                )
                self._link_free_ps = done_at
                yield done_at - self.sim.now_ps
                if pending_write is not None and not pending_write.triggered:
                    yield pending_write
                pending_write = self._write_local(dst, dst_addr + pos, data)
                moved += take
                pos += take
            if pending_write is not None and not pending_write.triggered:
                yield pending_write
            self.bytes_transferred += moved
            self.transfers += 1
            return moved

        return Process(self.sim, run(), name=f"{self.name}.xfer")
