"""The on-chip Avalon bus connecting MBS to memory controllers and slaves.

Section 3.3(iv): MBS has two read and two write ports on the bus (it
processes two DMI frames per cycle), the core/DDR clock-domain crossing
happens in the bus, and new slaves — PCIe, accelerator MMIO regions,
controllers for alternative memory technologies — integrate plug-and-play
as long as they speak the bus interface.

A slave is anything with ``submit_read(addr, nbytes) -> Signal`` and
``submit_write(addr, data) -> Signal`` (the :class:`MemoryController` API).
Slaves are registered with a base/size window; the bus routes by address
and translates to slave-local addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import AddressRangeError, ConfigurationError
from ..sim import ClockDomain, Signal, Simulator, fabric_clock


@dataclass
class _Window:
    base: int
    size: int
    slave: object
    name: str

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size


class AvalonPort:
    """One master port: single-issue per fabric cycle, in-order."""

    def __init__(self, sim: Simulator, name: str, clock: ClockDomain):
        self.sim = sim
        self.name = name
        self.clock = clock
        self._next_issue_ps = 0
        self.transactions = 0
        self.wait_ps = 0

    def issue_slot(self) -> int:
        """Reserve the next issue slot; returns the slot's start time."""
        start = max(self.sim.now_ps, self._next_issue_ps)
        self.wait_ps += start - self.sim.now_ps
        self._next_issue_ps = start + self.clock.period_ps
        self.transactions += 1
        return start


class AvalonBus:
    """Address-routed interconnect with CDC latency and per-port pacing."""

    def __init__(
        self,
        sim: Simulator,
        num_read_ports: int = 2,
        num_write_ports: int = 2,
        cdc_latency_cycles: int = 3,
        clock: Optional[ClockDomain] = None,
        name: str = "avalon",
    ):
        if num_read_ports <= 0 or num_write_ports <= 0:
            raise ConfigurationError("Avalon bus needs at least one port each way")
        self.sim = sim
        self.name = name
        self.clock = clock or fabric_clock()
        self.read_ports = [
            AvalonPort(sim, f"{name}.rd{i}", self.clock) for i in range(num_read_ports)
        ]
        self.write_ports = [
            AvalonPort(sim, f"{name}.wr{i}", self.clock) for i in range(num_write_ports)
        ]
        self.cdc_latency_ps = cdc_latency_cycles * self.clock.period_ps
        self._windows: List[_Window] = []

    # -- topology ------------------------------------------------------------

    def add_slave(self, base: int, size: int, slave: object, name: str = "") -> None:
        """Map ``slave`` at ``[base, base+size)``; windows must not overlap."""
        if size <= 0:
            raise ConfigurationError(f"slave window size must be positive")
        for win in self._windows:
            if base < win.base + win.size and win.base < base + size:
                raise ConfigurationError(
                    f"slave window [{base:#x},{base + size:#x}) overlaps {win.name}"
                )
        self._windows.append(_Window(base, size, slave, name or repr(slave)))

    def _route(self, addr: int) -> Tuple[object, int]:
        for win in self._windows:
            if win.contains(addr):
                return win.slave, addr - win.base
        raise AddressRangeError(f"{self.name}: no slave at address {addr:#x}")

    @property
    def mapped_bytes(self) -> int:
        return sum(win.size for win in self._windows)

    # -- transfers ---------------------------------------------------------------

    def read(
        self, port: int, addr: int, nbytes: int, journey: Optional[int] = None
    ) -> Signal:
        """Read via read port ``port``; signal triggers with the data."""
        slave, local = self._route(addr)
        slot = self.read_ports[port].issue_slot()
        done = Signal(f"{self.name}.rd@{addr:#x}")
        lead = slot - self.sim.now_ps + self.cdc_latency_ps
        kwargs = self._journey_kwargs(slave, journey)

        def launch():
            inner = slave.submit_read(local, nbytes, **kwargs)
            inner.add_waiter(
                lambda data: self.sim.call_after(self.cdc_latency_ps, done.trigger, data)
            )

        self.sim.call_after(lead, launch)
        return done

    def write(
        self, port: int, addr: int, data: bytes, journey: Optional[int] = None
    ) -> Signal:
        """Write via write port ``port``; signal triggers on completion."""
        slave, local = self._route(addr)
        slot = self.write_ports[port].issue_slot()
        done = Signal(f"{self.name}.wr@{addr:#x}")
        lead = slot - self.sim.now_ps + self.cdc_latency_ps
        kwargs = self._journey_kwargs(slave, journey)

        def launch():
            inner = slave.submit_write(local, data, **kwargs)
            inner.add_waiter(
                lambda _: self.sim.call_after(self.cdc_latency_ps, done.trigger, None)
            )

        self.sim.call_after(lead, launch)
        return done

    @staticmethod
    def _journey_kwargs(slave: object, journey: Optional[int]) -> dict:
        """Only journey-aware slaves (``accepts_journey``) take the kwarg;
        others — accelerator MMIO regions, third-party slaves — keep the
        plain two-argument submit API."""
        if journey is not None and getattr(slave, "accepts_journey", False):
            return {"journey": journey}
        return {}
