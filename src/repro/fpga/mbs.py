"""Memory Buffer Synchronous (MBS) logic: decode, execute, respond.

MBS receives the downstream commands, executes the corresponding memory
operations through the Avalon bus, and returns data/done upstream
(Section 3.3 (iii)).  The structure modeled here:

* two parallel frame decoders (two frames per 250 MHz cycle — the 8x-wider
  datapath that matches Centaur's throughput at 1/8th the clock);
* 32 command engines, each owning a command until completion;
* read requests issued directly by the decoders on dedicated read ports
  (no arbitration); writes arbitrated per write port (16 engines each);
* one RMW ALU per write port, NOP for plain writes;
* the latency knob's delay modules between MBS and the Avalon bus;
* the ConTutto ``flush`` extension: completes when every previously issued
  write has reached the memory controller — required by the persistent
  memory stack (Section 4.2) and absent from Centaur.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..dmi.commands import Command, Opcode, Response
from ..errors import ProtocolError
from ..sim import ClockDomain, Signal, Simulator, fabric_clock
from ..telemetry import probe
from ..units import CACHE_LINE_BYTES
from .alu import RmwAlu
from .avalon import AvalonBus
from .command_engine import CommandEngine, EnginePool
from .latency_knob import LatencyKnob

RespondFn = Callable[[Response], None]

#: fabric cycles to parse/decode a command out of its frames
DECODE_CYCLES = 2
#: fabric cycles from command completion to upstream frame handoff
RESPOND_CYCLES = 2


class MbsLogic:
    """The MBS pipeline over an Avalon bus."""

    def __init__(
        self,
        sim: Simulator,
        avalon: AvalonBus,
        knob: Optional[LatencyKnob] = None,
        clock: Optional[ClockDomain] = None,
        route: Optional[Callable[[int], int]] = None,
        inline_accel: bool = False,
        name: str = "mbs",
    ):
        self.sim = sim
        self.name = name
        self.avalon = avalon
        self.clock = clock or fabric_clock()
        self.knob = knob or LatencyKnob(self.clock)
        self.engines = EnginePool(sim)
        self.alus = [RmwAlu(sim, f"{name}.alu{i}", self.clock) for i in range(2)]
        self.inline_accel = inline_accel
        #: translate a DMI line address to an Avalon address (controller
        #: interleave); identity when not provided
        self.route = route or (lambda addr: addr)
        # write drain tracking for FLUSH: counts write-class commands from
        # the moment MBS receives them (not from Avalon issue), so a flush
        # ordered after a write always waits for it
        self._writes_outstanding = 0
        self._flush_waiters: List[Signal] = []
        #: fault hook (``fpga.clock_jitter``): when set, every memory
        #: operation picks up a uniform extra delay in [0, jitter_ps] —
        #: a thermally unstable fabric clock can only be late, never early
        self.jitter_ps = 0
        self.jitter_rng = None
        # Stats
        self.commands = 0
        self.flushes = 0

    # -- timing helpers ------------------------------------------------------

    def _cycles_ps(self, cycles: int) -> int:
        return self.clock.cycles_to_ps(cycles)

    # -- entry point -----------------------------------------------------------

    def handle(self, command: Command, respond: RespondFn) -> None:
        """Execute one assembled command (wired behind the DMI channel)."""
        self.commands += 1
        if command.opcode.has_downstream_data:
            self._writes_outstanding += 1
        decode_ps = self._cycles_ps(DECODE_CYCLES)
        self.sim.call_after(
            decode_ps,
            lambda: self.engines.allocate_or_wait(
                command.tag, lambda engine: self._dispatch(engine, command, respond)
            ),
        )

    def _dispatch(self, engine: CommandEngine, command: Command, respond: RespondFn) -> None:
        trace = probe.session
        if trace is not None:
            # command-engine scheduler occupancy, sampled at every allocate
            trace.gauge_set("buffer.mbs.engines_busy", self.engines.busy_count)

        def finish(response: Response) -> None:
            self.engines.free(engine)
            self.sim.call_after(self._cycles_ps(RESPOND_CYCLES), respond, response)

        op = command.opcode
        delay = self.knob.delay_ps  # delay modules between MBS and Avalon
        if self.jitter_ps and self.jitter_rng is not None:
            delay += self.jitter_rng.randint(0, self.jitter_ps)
        if op is Opcode.READ:
            self.sim.call_after(delay, self._do_read, engine, command, finish)
        elif op is Opcode.WRITE:
            self.sim.call_after(delay, self._do_write, engine, command, finish)
        elif op is Opcode.FLUSH:
            # flush is ordering, not a memory access: no knob delay
            self._do_flush(command, finish)
        elif op.is_rmw:
            self.sim.call_after(delay, self._do_rmw, engine, command, finish)
        else:  # pragma: no cover - opcode space is closed
            raise ProtocolError(f"MBS cannot execute {op.value}")

    # -- operations ----------------------------------------------------------------

    def _do_read(self, engine: CommandEngine, command: Command, finish) -> None:
        addr = self.route(command.address)
        done = self.avalon.read(
            engine.read_port, addr, CACHE_LINE_BYTES, journey=command.journey
        )
        done.add_waiter(
            lambda data: finish(Response(command.tag, Opcode.READ, data))
        )

    def _do_write(self, engine: CommandEngine, command: Command, finish) -> None:
        assert command.data is not None
        addr = self.route(command.address)
        # plain writes pass through the (NOP) ALU stage on the write-port path
        _, _, ready_ps = self.alus[engine.write_port].issue(
            Opcode.WRITE, b"", command.data
        )
        wait = max(0, ready_ps - self.sim.now_ps)
        self.sim.call_after(
            wait, self._issue_write, engine, addr, command.data, command.tag,
            Opcode.WRITE, None, finish, command.journey,
        )

    def _do_rmw(self, engine: CommandEngine, command: Command, finish) -> None:
        assert command.data is not None
        addr = self.route(command.address)
        read_done = self.avalon.read(
            engine.read_port, addr, CACHE_LINE_BYTES, journey=command.journey
        )

        def merge(old: bytes) -> None:
            stored, returned, ready_ps = self.alus[engine.write_port].issue(
                command.opcode, old, command.data, command.byte_enable
            )
            wait = max(0, ready_ps - self.sim.now_ps)
            self.sim.call_after(
                wait, self._issue_write, engine, addr, stored, command.tag,
                command.opcode, returned, finish, command.journey,
            )

        read_done.add_waiter(merge)

    def _issue_write(
        self, engine, addr, data, tag, opcode, returned, finish, journey=None
    ) -> None:
        done = self.avalon.write(engine.write_port, addr, data, journey=journey)

        def complete(_):
            # finish the write before releasing flush waiters so a flush
            # never completes ahead of the write it was ordered after
            finish(Response(tag, opcode, returned))
            self._writes_outstanding -= 1
            if self._writes_outstanding == 0:
                waiters, self._flush_waiters = self._flush_waiters, []
                for waiter in waiters:
                    waiter.trigger()

        done.add_waiter(complete)

    def _do_flush(self, command: Command, finish) -> None:
        self.flushes += 1
        if self._writes_outstanding == 0:
            finish(Response(command.tag, Opcode.FLUSH))
            return
        gate = Signal(f"{self.name}.flush")
        self._flush_waiters.append(gate)
        gate.add_waiter(lambda _: finish(Response(command.tag, Opcode.FLUSH)))
