"""The software-controllable added-latency knob (Section 4.1).

ConTutto adds variable latency to memory by inserting delay modules between
the MBS logic and the Avalon bus.  Each knob position adds 6 fabric cycles
= 24 ns at 250 MHz; the position is set from software (through the FSI/I2C
register path in :mod:`repro.firmware`).

Table 3 uses positions 0 (base, 390 ns), 2 (438 ns), 6 (534 ns) and
7 (558 ns).
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import ClockDomain, fabric_clock

CYCLES_PER_POSITION = 6
MAX_POSITION = 7


class LatencyKnob:
    """Delay stage between MBS and the Avalon bus."""

    def __init__(self, clock: ClockDomain = None):
        self.clock = clock or fabric_clock()
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def set_position(self, position: int) -> None:
        if not 0 <= position <= MAX_POSITION:
            raise ConfigurationError(
                f"latency knob position {position} outside 0..{MAX_POSITION}"
            )
        self._position = position

    @property
    def delay_cycles(self) -> int:
        return self._position * CYCLES_PER_POSITION

    @property
    def delay_ps(self) -> int:
        """Added one-way latency on the command path to memory."""
        return self.clock.cycles_to_ps(self.delay_cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyKnob @ {self._position} (+{self.delay_ps / 1000:.0f} ns)>"
