"""Exception hierarchy for the ConTutto reproduction library.

Every error raised by ``repro`` derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A system or component was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event kernel was misused or reached an invalid state."""


class LinkTrainingError(ReproError):
    """DMI link training failed (alignment, FRTL budget, retries exhausted)."""


class FrtlBudgetError(LinkTrainingError):
    """Round-trip latency through the buffer exceeds the host's maximum FRTL."""


class ProtocolError(ReproError):
    """A DMI protocol invariant was violated (bad tag, bad sequence, ...)."""


class CrcError(ProtocolError):
    """A frame failed its CRC check (normally handled by replay)."""


class ReplayError(ProtocolError):
    """Frame replay could not recover the channel."""


class TagExhaustedError(ProtocolError):
    """All 32 host command tags are in flight and another issue was forced."""


class TelemetryError(ReproError, ValueError):
    """Telemetry misuse: duplicate metric name, kind clash, nested session.

    Also a :class:`ValueError` — the legacy ``sim.stats`` wrappers raised
    ``ValueError`` for bad metric arguments and callers catch it as such.
    """


class MemoryError_(ReproError):
    """A memory-device access was invalid (range, alignment, power state)."""


class AlignmentError(MemoryError_):
    """Access not aligned to the device or protocol granularity."""


class AddressRangeError(MemoryError_):
    """Access outside the device's populated address range."""


class EnduranceExceededError(MemoryError_):
    """A non-volatile cell was written more times than its rated endurance."""


class PowerSequenceError(ReproError):
    """FPGA voltage rails were brought up or torn down out of order."""


class FirmwareError(ReproError):
    """Boot / service-processor operation failed."""


class PlugRuleError(FirmwareError):
    """A card was plugged into a DMI slot the plug rules forbid."""


class AccelError(ReproError):
    """Near-memory accelerator misuse (bad control block, bad opcode...)."""


class AssemblerError(AccelError):
    """Access-processor assembly source could not be assembled."""


class StorageError(ReproError):
    """Block-device or driver-stack failure."""


class ArtifactError(ReproError):
    """A run artifact (JSONL stream, report, profile) is malformed."""
